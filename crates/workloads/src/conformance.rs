//! The differential oracle harness.
//!
//! One reusable layer of checks shared by the root `tests/conformance.rs`
//! tier, `bench_runner --conformance`, and the integration/property suites
//! (which previously each carried their own copy-pasted assertions):
//!
//! * **feasibility** — every demand pair connected, output acyclic
//!   ([`check_feasible_forest`]);
//! * **ratio** — solver weight against the entry's [`crate::Certificate`]
//!   ([`check_ratio_le`]): `W(det) ≤ 2·OPT` (Theorem 4.17, tie slack per
//!   the Section 2 unique-weight assumption), `W(moat) ≤ 2·dual`
//!   (Theorem 4.1), `W(rounded) ≤ (2+ε)·OPT` (Theorem D.2),
//!   `W(randomized) ≤ O(log n)·OPT` (Theorem 5.2), and every feasible
//!   output weighs at least the certified lower bound;
//! * **differential** — the distributed deterministic solver must replay
//!   the centralized Algorithm 1 merge-for-merge (Lemma 4.13,
//!   [`check_merge_agreement`]);
//! * **determinism** — repeated seeded runs must be bit-identical
//!   (forest, rounds, messages, bits);
//! * **CONGEST compliance** — every [`RoundLedger`] entry respects the
//!   `B`-bit per-edge budget ([`check_ledger_budget`]).
//!
//! Checks come in two flavors: `check_*` returns `Result`/`Vec` for
//! violation collection (bench reporting, proptests), `assert_*` panics
//! with context (integration tests).

use dsf_baselines::khan::{solve_khan, KhanConfig};
use dsf_baselines::solve_collect_at_root;
use dsf_congest::{CongestConfig, RoundLedger, SimError};
use dsf_core::det::{solve_deterministic, DetConfig, DetOutput};
use dsf_core::randomized::{solve_randomized, RandConfig};
use dsf_graph::dyadic::Dyadic;
use dsf_graph::{NodeId, Weight, WeightedGraph};
use dsf_steiner::moat::MoatRun;
use dsf_steiner::{greedy, local_search, moat, moat_rounded, ForestSolution, Instance};

use crate::certificate::Certificate;
use crate::corpus::CorpusEntry;

/// Checks that `f` connects every demand component and is acyclic.
///
/// # Errors
///
/// Returns a description of the first violated condition.
pub fn check_feasible_forest(
    g: &WeightedGraph,
    inst: &Instance,
    f: &ForestSolution,
) -> Result<(), String> {
    if !inst.is_feasible(g, f) {
        return Err("solution leaves a demand pair disconnected".into());
    }
    if !f.is_forest(g) {
        return Err("solution contains a cycle".into());
    }
    Ok(())
}

/// Panicking flavor of [`check_feasible_forest`] for test suites.
///
/// # Panics
///
/// Panics with `ctx` if the solution is infeasible or cyclic.
pub fn assert_feasible_forest(g: &WeightedGraph, inst: &Instance, f: &ForestSolution, ctx: &str) {
    if let Err(e) = check_feasible_forest(g, inst, f) {
        panic!("{ctx}: {e}");
    }
}

/// Checks `weight ≤ factor · base` (with absolute slack `slack` for
/// integer-tie effects).
///
/// # Errors
///
/// Returns the violated inequality, spelled out.
pub fn check_ratio_le(weight: Weight, factor: f64, base: f64, slack: f64) -> Result<(), String> {
    let bound = factor * base + slack;
    if (weight as f64) <= bound + 1e-9 {
        Ok(())
    } else {
        Err(format!(
            "weight {weight} exceeds {factor} x {base} + {slack} = {bound:.3}"
        ))
    }
}

/// Panicking flavor of [`check_ratio_le`].
///
/// # Panics
///
/// Panics with `ctx` if the ratio bound is violated.
pub fn assert_ratio_le(weight: Weight, factor: f64, base: f64, ctx: &str) {
    if let Err(e) = check_ratio_le(weight, factor, base, 0.0) {
        panic!("{ctx}: {e}");
    }
}

/// The `O(log n)` factor asserted for the randomized solver
/// (Theorem 5.2 with the constant used throughout the experiments).
pub fn randomized_log_factor(n: usize) -> f64 {
    3.0 * (n as f64).ln()
}

/// The (looser) `O(log n)` factor for the Khan et al. baseline, whose
/// per-component selection repeats the embedding lottery independently.
pub fn khan_log_factor(n: usize) -> f64 {
    6.0 * (n as f64).ln()
}

/// The constant factor asserted for the gluttonous greedy and its
/// local-search post-processing. Gupta–Kumar and Groß et al. prove
/// constant ratios without pinning a small explicit constant, so — like
/// [`randomized_log_factor`]'s `3.0` — this is the empirical envelope used
/// throughout the experiments; in practice both solvers sit well under 2.
pub const GREEDY_FACTOR: f64 = 4.0;

/// Solver-agnostic acceptance checks for one solution against a corpus
/// certificate: feasibility and forest-ness ([`check_feasible_forest`]),
/// the certified lower bound (any feasible forest weighs at least
/// `OPT ≥ lower`), and the `factor · upper + slack` ratio envelope
/// ([`check_ratio_le`]).
///
/// [`check_entry`] routes every solver through this; the oracle mutation
/// self-test (`tests/oracle_selftest.rs`) feeds it deliberately broken
/// solutions to prove the gate can fail. Returns every violation, tagged
/// `[solver]` (empty = accepted).
pub fn check_solution(
    g: &WeightedGraph,
    inst: &Instance,
    cert: &Certificate,
    solver: &str,
    forest: &ForestSolution,
    factor: f64,
    slack: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let w = forest.weight(g);
    if let Err(e) = check_feasible_forest(g, inst, forest) {
        violations.push(format!("[{solver}] {e}"));
    }
    if (w as f64) < cert.lower - 1e-6 {
        violations.push(format!(
            "[{solver}] weight {w} below certified lower bound {}",
            cert.lower
        ));
    }
    if let Err(e) = check_ratio_le(w, factor, cert.upper as f64, slack) {
        violations.push(format!("[{solver}] {e}"));
    }
    violations
}

/// The from-scratch baseline the churn gate holds repaired forests to:
/// gluttonous greedy followed by the local-search improver, on the
/// post-delta instance. Deterministic.
pub fn scratch_solve(g: &WeightedGraph, inst: &Instance) -> ForestSolution {
    local_search::improve(g, inst, &greedy::solve_greedy(g, inst))
}

/// The churn-differential gate: acceptance checks for one *repaired*
/// forest after a delta, against the post-delta instance.
///
/// On top of the solver-agnostic [`check_solution`] checks (feasibility,
/// forest-ness, certified ratio envelope at [`GREEDY_FACTOR`]) the
/// repaired forest must
///
/// * weigh no more than `scratch_weight`, the from-scratch
///   [`scratch_solve`] of the same post-delta state — repair must never
///   cost solution quality; and
/// * be minimal: [`ForestSolution::prune_to_minimal`] must be the
///   identity, so a corrupted rollback that leaves a dangling edge after
///   a removal is rejected even when the forest is still feasible and
///   within ratio.
///
/// Returns every violation, tagged `[repair]` (empty = accepted). The
/// oracle self-test feeds this stale and corrupted forests to prove the
/// gate can fail.
pub fn check_repaired(
    g: &WeightedGraph,
    inst: &Instance,
    cert: &Certificate,
    repaired: &ForestSolution,
    scratch_weight: Weight,
) -> Vec<String> {
    let mut violations = check_solution(g, inst, cert, "repair", repaired, GREEDY_FACTOR, 0.0);
    let w = repaired.weight(g);
    if w > scratch_weight {
        violations.push(format!(
            "[repair] weight {w} exceeds the from-scratch greedy+local_search weight {scratch_weight}"
        ));
    }
    if &repaired.prune_to_minimal(g, inst) != repaired {
        violations.push(
            "[repair] forest is not minimal: a dangling edge survived the rollback".to_string(),
        );
    }
    violations
}

/// The per-entry ratio ceiling a solver committed to, in milli units:
/// `⌈1000 · (factor · upper + slack) / upper⌉`. Emitted next to the
/// achieved `ratio_milli` so the schema checker can replay the
/// ratio-regression gate (`ratio_milli ≤ bound_milli`) offline.
pub fn bound_milli(cert: &Certificate, factor: f64, slack: f64) -> u64 {
    let upper = cert.upper.max(1) as f64;
    ((1000.0 * (factor * upper + slack)) / upper).ceil() as u64
}

/// Merge endpoints of the distributed deterministic run, in merge order.
pub fn det_merge_pairs(out: &DetOutput) -> Vec<(NodeId, NodeId)> {
    out.merges.iter().map(|m| (m.v, m.w)).collect()
}

/// Merge endpoints of a centralized moat run, in merge order.
pub fn moat_merge_pairs(run: &MoatRun) -> Vec<(NodeId, NodeId)> {
    run.merges.iter().map(|m| (m.v, m.w)).collect()
}

/// Lemma 4.13: the distributed deterministic solver replays the
/// centralized Algorithm 1 merge sequence exactly, and the realized
/// weights agree up to shortest-path tie slack (Section 2's unique-weight
/// assumption does not hold for integer weights).
///
/// # Errors
///
/// Returns which of the two agreements failed.
pub fn check_merge_agreement(
    g: &WeightedGraph,
    det: &DetOutput,
    central: &MoatRun,
) -> Result<(), String> {
    if det_merge_pairs(det) != moat_merge_pairs(central) {
        return Err(format!(
            "merge sequences diverge: {:?} vs {:?}",
            det_merge_pairs(det),
            moat_merge_pairs(central)
        ));
    }
    let (dw, cw) = (det.forest.weight(g) as f64, central.forest.weight(g) as f64);
    if (dw - cw).abs() > tie_slack(cw) {
        return Err(format!("weights diverge beyond tie slack: {dw} vs {cw}"));
    }
    Ok(())
}

/// The absolute slack allowed between two realizations of the same merge
/// sequence over equal-weight shortest-path ties.
pub fn tie_slack(central_weight: f64) -> f64 {
    0.15 * central_weight + 2.0
}

/// Checks the CONGEST bandwidth invariants on every ledger entry: a stage
/// delivering `messages` messages of at most `bandwidth_bits` bits each
/// can carry at most `messages · B` bits, and the metered-cut traffic is a
/// subset of all traffic.
///
/// Returns one description per violated entry (empty = compliant).
pub fn check_ledger_budget(ledger: &RoundLedger, bandwidth_bits: usize) -> Vec<String> {
    let mut violations = Vec::new();
    for e in ledger.entries() {
        if e.bits > e.messages * bandwidth_bits as u64 {
            violations.push(format!(
                "stage {:?}: {} bits exceed {} messages x B={} bits",
                e.label, e.bits, e.messages, bandwidth_bits
            ));
        }
        if e.cut_bits > e.bits {
            violations.push(format!(
                "stage {:?}: cut_bits {} exceed total bits {}",
                e.label, e.cut_bits, e.bits
            ));
        }
    }
    violations
}

/// Panicking flavor of [`check_ledger_budget`].
///
/// # Panics
///
/// Panics with `ctx` on the first over-budget ledger entry.
pub fn assert_ledger_budget(ledger: &RoundLedger, bandwidth_bits: usize, ctx: &str) {
    let v = check_ledger_budget(ledger, bandwidth_bits);
    assert!(v.is_empty(), "{ctx}: {v:?}");
}

/// One solver's result on a corpus entry.
#[derive(Debug, Clone)]
pub struct SolverRecord {
    /// Solver name (`moat`, `moat_rounded`, `greedy`,
    /// `greedy+local_search`, `det`, `randomized`, `khan`).
    pub solver: &'static str,
    /// Weight of the returned forest.
    pub weight: Weight,
    /// The ratio ceiling this solver was held to ([`bound_milli`]).
    pub bound_milli: u64,
}

/// The oracle's verdict on one corpus entry.
#[derive(Debug, Clone)]
pub struct EntryOutcome {
    /// The entry's id.
    pub id: String,
    /// Per-solver weights, in a stable order.
    pub records: Vec<SolverRecord>,
    /// Everything that failed (empty = conformant).
    pub violations: Vec<String>,
}

/// One distributed run reduced to the fields the oracle compares.
type DistRun = Result<(ForestSolution, RoundLedger), SimError>;

/// A fingerprint of one run for bit-identical determinism checks.
fn fingerprint(forest: &ForestSolution, ledger: &RoundLedger) -> (Vec<u32>, u64, u64, u64) {
    (
        forest.edges().iter().map(|e| e.0).collect(),
        ledger.total(),
        ledger.messages(),
        ledger.bits(),
    )
}

/// Runs every solver on `entry` and applies the full oracle.
///
/// Never panics on a conformance failure — violations are collected so a
/// sweep can report all of them; simulator errors are violations too.
pub fn check_entry(entry: &CorpusEntry) -> EntryOutcome {
    let g = &entry.graph;
    let inst = &entry.instance;
    let cert = &entry.certificate;
    let upper = cert.upper as f64;
    let bandwidth = CongestConfig::for_graph(g).bandwidth_bits;
    let mut records = Vec::new();
    let mut violations = Vec::new();
    let violate = |solver: &str, what: String| format!("[{solver}] {what}");

    // Common per-solver checks, routed through the same [`check_solution`]
    // seam the oracle self-test attacks with broken solutions.
    let mut base_checks = |solver: &'static str,
                           forest: &ForestSolution,
                           factor: f64,
                           slack: f64,
                           violations: &mut Vec<String>| {
        violations.extend(check_solution(g, inst, cert, solver, forest, factor, slack));
        records.push(SolverRecord {
            solver,
            weight: forest.weight(g),
            bound_milli: bound_milli(cert, factor, slack),
        });
    };

    // Centralized Algorithm 1: 2-approximation via the primal-dual bound.
    let central = moat::grow(g, inst);
    {
        let w = central.forest.weight(g);
        if let Err(e) = check_ratio_le(w, 2.0, central.dual.to_f64(), 0.0) {
            violations.push(violate("moat", format!("primal-dual bound: {e}")));
        }
        if central.dual.to_f64() > upper + 1e-6 {
            violations.push(violate(
                "moat",
                format!(
                    "dual {} exceeds certified upper {upper}",
                    central.dual.to_f64()
                ),
            ));
        }
        base_checks("moat", &central.forest, 2.0, 0.0, &mut violations);
    }

    // Centralized Algorithm 2 (rounded radii): (2+ε) with ε = 1/2.
    let rounded = moat_rounded::grow_rounded(g, inst, Dyadic::new(1, 1));
    base_checks("moat_rounded", &rounded.forest, 2.5, 0.0, &mut violations);

    // The beat-the-2 sequential line: gluttonous greedy (Gupta–Kumar) and
    // its local-search post-processing (Groß et al.). Both are
    // deterministic by construction — run twice and hold them to it — and
    // the improver must never raise the weight of what it was handed.
    let greedy_forest = greedy::solve_greedy(g, inst);
    if greedy_forest != greedy::solve_greedy(g, inst) {
        violations.push(violate(
            "greedy",
            "repeated runs are not bit-identical".into(),
        ));
    }
    base_checks(
        "greedy",
        &greedy_forest,
        GREEDY_FACTOR,
        0.0,
        &mut violations,
    );
    let improved = local_search::improve(g, inst, &greedy_forest);
    if improved != local_search::improve(g, inst, &greedy_forest) {
        violations.push(violate(
            "greedy+local_search",
            "repeated runs are not bit-identical".into(),
        ));
    }
    if improved.weight(g) > greedy_forest.weight(g) {
        violations.push(violate(
            "greedy+local_search",
            format!(
                "improve increased weight: {} from {}",
                improved.weight(g),
                greedy_forest.weight(g)
            ),
        ));
    }
    base_checks(
        "greedy+local_search",
        &improved,
        GREEDY_FACTOR,
        0.0,
        &mut violations,
    );

    // Shared distributed-solver protocol: run twice, check bit-identical
    // determinism and the ledger budget, and hand the first run back for
    // the solver-specific checks (None on simulator error).
    let dual_run = |solver: &'static str,
                    runs: (DistRun, DistRun),
                    violations: &mut Vec<String>|
     -> Option<(ForestSolution, RoundLedger)> {
        match runs {
            (Ok(a), Ok(b)) => {
                if fingerprint(&a.0, &a.1) != fingerprint(&b.0, &b.1) {
                    violations.push(violate(
                        solver,
                        "repeated seeded runs are not bit-identical".into(),
                    ));
                }
                for v in check_ledger_budget(&a.1, bandwidth) {
                    violations.push(violate(solver, v));
                }
                Some(a)
            }
            (r1, r2) => {
                violations.push(violate(
                    solver,
                    format!("simulator error: {:?}", r1.err().or(r2.err())),
                ));
                None
            }
        }
    };

    // Distributed deterministic (Theorem 4.17): differential vs Algorithm
    // 1, 2·OPT with tie slack, determinism, ledger budget.
    let det_runs = (
        solve_deterministic(g, inst, &DetConfig::default()),
        solve_deterministic(g, inst, &DetConfig::default()),
    );
    if let (Ok(det), _) | (_, Ok(det)) = (&det_runs.0, &det_runs.1) {
        if let Err(e) = check_merge_agreement(g, det, &central) {
            violations.push(violate("det", e));
        }
    }
    let det_runs = (
        det_runs.0.map(|o| (o.forest, o.rounds)),
        det_runs.1.map(|o| (o.forest, o.rounds)),
    );
    if let Some((forest, _)) = dual_run("det", det_runs, &mut violations) {
        let central_w = central.forest.weight(g) as f64;
        base_checks("det", &forest, 2.0, tie_slack(central_w), &mut violations);
    }

    // Distributed randomized (Theorem 5.2): O(log n)·OPT, seeded
    // determinism, ledger budget.
    let rand_runs = (
        solve_randomized(g, inst, &RandConfig::default()).map(|o| (o.forest, o.rounds)),
        solve_randomized(g, inst, &RandConfig::default()).map(|o| (o.forest, o.rounds)),
    );
    if let Some((forest, _)) = dual_run("randomized", rand_runs, &mut violations) {
        base_checks(
            "randomized",
            &forest,
            randomized_log_factor(g.n()),
            0.0,
            &mut violations,
        );
    }

    // Khan et al. baseline: feasibility, seeded determinism, budget, and
    // the looser O(log n) embedding bound.
    let khan_runs = (
        solve_khan(g, inst, &KhanConfig::default()).map(|o| (o.forest, o.rounds)),
        solve_khan(g, inst, &KhanConfig::default()).map(|o| (o.forest, o.rounds)),
    );
    if let Some((forest, _)) = dual_run("khan", khan_runs, &mut violations) {
        base_checks(
            "khan",
            &forest,
            khan_log_factor(g.n()),
            0.0,
            &mut violations,
        );
    }

    // Collect-at-root sanity baseline: must reproduce Algorithm 1 exactly.
    match solve_collect_at_root(g, inst) {
        Ok(collect) => {
            if collect.forest != central.forest {
                violations.push(violate(
                    "collect",
                    "collect-at-root diverges from centralized Algorithm 1".into(),
                ));
            }
            for v in check_ledger_budget(&collect.rounds, bandwidth) {
                violations.push(violate("collect", v));
            }
        }
        Err(e) => violations.push(violate("collect", format!("simulator error: {e:?}"))),
    }

    EntryOutcome {
        id: entry.id.clone(),
        records,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_congest::RunMetrics;
    use dsf_graph::{generators, EdgeId};
    use dsf_steiner::InstanceBuilder;

    #[test]
    fn feasibility_check_flags_disconnection_and_cycles() {
        let g = generators::path(4, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(3)])
            .build()
            .unwrap();
        let partial = ForestSolution::from_edges(vec![EdgeId(0)]);
        assert!(check_feasible_forest(&g, &inst, &partial).is_err());
        let full = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert!(check_feasible_forest(&g, &inst, &full).is_ok());
        // A cycle is rejected even when feasible.
        let ring = generators::ring(4, 3, 0);
        let ring_inst = InstanceBuilder::new(&ring)
            .component(&[NodeId(0), NodeId(2)])
            .build()
            .unwrap();
        let cyclic: ForestSolution = (0..4).map(EdgeId).collect();
        assert!(check_feasible_forest(&ring, &ring_inst, &cyclic).is_err());
    }

    #[test]
    fn ratio_check_boundaries() {
        assert!(check_ratio_le(10, 2.0, 5.0, 0.0).is_ok());
        assert!(check_ratio_le(11, 2.0, 5.0, 0.0).is_err());
        assert!(check_ratio_le(11, 2.0, 5.0, 1.0).is_ok());
    }

    #[test]
    fn ledger_budget_flags_overflow_and_cut_excess() {
        let mut ledger = RoundLedger::new();
        ledger.record(
            "ok",
            &RunMetrics {
                rounds: 2,
                messages: 10,
                total_bits: 320,
                max_message_bits: 32,
                cut_bits: 100,
            },
        );
        assert!(check_ledger_budget(&ledger, 32).is_empty());
        ledger.record(
            "over",
            &RunMetrics {
                rounds: 1,
                messages: 2,
                total_bits: 100,
                max_message_bits: 50,
                cut_bits: 0,
            },
        );
        ledger.record(
            "cut",
            &RunMetrics {
                rounds: 1,
                messages: 4,
                total_bits: 64,
                max_message_bits: 16,
                cut_bits: 65,
            },
        );
        let v = check_ledger_budget(&ledger, 32);
        assert_eq!(v.len(), 2);
        assert!(v[0].contains("over"));
        assert!(v[1].contains("cut"));
    }

    #[test]
    fn check_entry_accepts_a_known_good_instance() {
        let entries = crate::corpus::corpus(crate::corpus::Tier::Quick);
        let outcome = check_entry(&entries[0]);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        let solvers: Vec<&str> = outcome.records.iter().map(|r| r.solver).collect();
        assert_eq!(
            solvers,
            vec![
                "moat",
                "moat_rounded",
                "greedy",
                "greedy+local_search",
                "det",
                "randomized",
                "khan"
            ]
        );
        // Every record carries the ratio ceiling it was held to.
        assert!(outcome.records.iter().all(|r| r.bound_milli >= 1000));
    }

    #[test]
    fn check_solution_rejects_the_three_defect_classes() {
        // Path 0-1-2 (unit edges) plus a heavy detour 0-3-2; demand {0,2};
        // exact certificate OPT = 2.
        let mut b = dsf_graph::GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(3), 100).unwrap();
        b.add_edge(NodeId(3), NodeId(2), 100).unwrap();
        let g = b.build().unwrap();
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(2)])
            .build()
            .unwrap();
        let cert = crate::certificate::certify(&g, &inst);
        let good = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1)]);
        assert!(check_solution(&g, &inst, &cert, "good", &good, 2.0, 0.0).is_empty());
        // Heavy detour: feasible but 100x over the 2·OPT envelope.
        let heavy = ForestSolution::from_edges(vec![EdgeId(2), EdgeId(3)]);
        let v = check_solution(&g, &inst, &cert, "heavy", &heavy, 2.0, 0.0);
        assert!(v.iter().any(|e| e.contains("exceeds")), "{v:?}");
    }

    #[test]
    fn bound_milli_is_the_scaled_ceiling() {
        let cert = Certificate {
            kind: crate::certificate::CertificateKind::Exact,
            lower: 7.0,
            upper: 7,
        };
        assert_eq!(bound_milli(&cert, 2.0, 0.0), 2000);
        assert_eq!(bound_milli(&cert, 2.5, 0.0), 2500);
        // Slack shows up scaled by 1000/upper, rounded up.
        assert_eq!(bound_milli(&cert, 2.0, 1.0), 2143);
    }
}
