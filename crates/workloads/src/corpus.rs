//! The seeded, enumerable conformance corpus.
//!
//! A corpus is the cross product of **graph families** (every generator in
//! [`dsf_graph::generators`], including the adversarial families added for
//! this lab) with **demand patterns**:
//!
//! | pattern | shape | stresses |
//! |---|---|---|
//! | `matched_clusters` | components drawn from contiguous node blocks | dense local demand (Gupta–Traub-style clusters) |
//! | `long_range` | pairs `{i, n-1-i}` across the id range | long augmenting structures through the whole graph |
//! | `overlapping_groups` | chained connection requests sharing endpoints | the Lemma 2.3 CR→IC transitive merge |
//! | `singleton_spam` | real pairs drowned in singleton components | the Lemma 2.4 minimalization path |
//!
//! Every entry is deterministic per `(family, pattern, seed)` and carries a
//! [`Certificate`] so ratio checks never depend on re-deriving ground truth.

use dsf_graph::{generators, NodeId, WeightedGraph};
use dsf_steiner::{ConnectionRequests, Instance, InstanceBuilder};

use crate::certificate::{certify, Certificate};

/// Corpus size tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// CI-sized: small graphs, one seed per combination (~32 entries).
    Quick,
    /// Larger graphs and extra seeds for the full conformance sweep.
    Full,
}

/// One corpus instance: graph, demand, and ground-truth certificate.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Stable id, e.g. `gnp/matched_clusters/seed=0`.
    pub id: String,
    /// Graph family name.
    pub family: &'static str,
    /// Demand pattern name.
    pub pattern: &'static str,
    /// The network.
    pub graph: WeightedGraph,
    /// The (minimal) demand instance.
    pub instance: Instance,
    /// Ground truth for ratio assertions.
    pub certificate: Certificate,
}

/// All graph family names, in corpus order.
pub const FAMILIES: [&str; 9] = [
    "gnp",
    "grid",
    "geometric",
    "caterpillar",
    "tree_noise",
    "barbell",
    "clustered",
    "heavy_tailed",
    "power_law",
];

/// All demand pattern names, in corpus order.
pub const PATTERNS: [&str; 4] = [
    "matched_clusters",
    "long_range",
    "overlapping_groups",
    "singleton_spam",
];

pub(crate) fn make_graph(family: &str, tier: Tier, seed: u64) -> WeightedGraph {
    let quick = tier == Tier::Quick;
    match family {
        "gnp" => {
            let n = if quick { 20 } else { 48 };
            generators::gnp_connected(n, 0.2, 12, seed)
        }
        "grid" => {
            let (r, c) = if quick { (4, 5) } else { (6, 9) };
            generators::grid(r, c, 8, seed)
        }
        "geometric" => {
            let n = if quick { 20 } else { 44 };
            generators::random_geometric(n, if quick { 0.35 } else { 0.25 }, seed)
        }
        "caterpillar" => {
            let spine = if quick { 8 } else { 18 };
            generators::caterpillar(spine, 1, 6, seed)
        }
        "tree_noise" => {
            let n = if quick { 22 } else { 50 };
            generators::tree_with_noise(n, n / 4, 10, seed)
        }
        "barbell" => {
            let (clique, bridge) = if quick { (7, 4) } else { (12, 10) };
            generators::barbell(clique, bridge, 9, seed)
        }
        "clustered" => {
            let (k, per) = if quick { (3, 7) } else { (5, 9) };
            generators::clustered_geometric(k, per, seed)
        }
        "heavy_tailed" => {
            let n = if quick { 20 } else { 44 };
            generators::heavy_tailed(n, 0.15, 2.0, 100_000, seed)
        }
        "power_law" => {
            // RMAT/Kronecker skewed-degree topology — the corpus-sized
            // cousin of the `--scale-xl` bench tier's 10M-node instances.
            let n = if quick { 28 } else { 56 };
            generators::rmat(n, 3, 12, seed)
        }
        other => panic!("unknown graph family {other:?}"),
    }
}

/// `count` disjoint components of `size` terminals each, every component
/// sampled from its own contiguous block of node ids (dense local demand).
fn matched_clusters(g: &WeightedGraph, count: usize, size: usize, seed: u64) -> Instance {
    let n = g.n();
    assert!(count * size <= n, "clusters do not fit");
    let block = n / count;
    let mut b = InstanceBuilder::new(g);
    for c in 0..count {
        let picked = generators::sample_nodes(block, size, seed + c as u64);
        let terms: Vec<NodeId> = picked
            .into_iter()
            .map(|v| NodeId::from(c * block + v.idx()))
            .collect();
        b = b.component(&terms);
    }
    b.build().expect("blocks are disjoint")
}

/// `count` antipodal-by-id pairs `{i, n-1-i}`.
fn long_range(g: &WeightedGraph, count: usize) -> Instance {
    let n = g.n();
    assert!(2 * count < n, "pairs would collide");
    let mut b = InstanceBuilder::new(g);
    for i in 0..count {
        b = b.component(&[NodeId::from(i), NodeId::from(n - 1 - i)]);
    }
    b.build().expect("antipodal pairs are disjoint")
}

/// Chained connection requests sharing endpoints: `(a,b),(b,c),(c,d)` plus
/// one separate pair — exercises the CR→IC transitive closure.
fn overlapping_groups(g: &WeightedGraph, seed: u64) -> Instance {
    let picked = generators::sample_nodes(g.n(), 6, seed);
    let mut cr = ConnectionRequests::new(g.n());
    cr.request(picked[0], picked[1]);
    cr.request(picked[1], picked[2]);
    cr.request(picked[2], picked[3]);
    cr.request(picked[4], picked[5]);
    cr.to_components(g)
}

/// Two genuine pairs drowned in singleton components; the corpus stores
/// the minimalized instance (Lemma 2.4) the solvers actually receive.
fn singleton_spam(g: &WeightedGraph, seed: u64) -> Instance {
    let picked = generators::sample_nodes(g.n(), 10, seed);
    let mut b = InstanceBuilder::new(g);
    b = b.component(&[picked[0], picked[1]]);
    b = b.component(&[picked[2], picked[3]]);
    for &s in &picked[4..] {
        b = b.component(&[s]);
    }
    let spam = b.build().expect("sampled nodes are distinct");
    assert!(!spam.is_minimal());
    let minimal = spam.make_minimal();
    assert_eq!(minimal.k(), 2, "minimalization must drop all singletons");
    minimal
}

fn make_instance(pattern: &str, g: &WeightedGraph, tier: Tier, seed: u64) -> Instance {
    match pattern {
        // Quick keeps one combination above the exact-certificate cutoff
        // (k=4, t=12) so the sandwich path is exercised in CI too.
        "matched_clusters" => match tier {
            Tier::Quick => matched_clusters(g, 4, 3, seed),
            Tier::Full => matched_clusters(g, 5, 3, seed),
        },
        "long_range" => long_range(g, 3),
        "overlapping_groups" => overlapping_groups(g, seed),
        "singleton_spam" => singleton_spam(g, seed),
        other => panic!("unknown demand pattern {other:?}"),
    }
}

/// Seeds per `(family, pattern)` combination.
fn seeds(tier: Tier) -> std::ops::Range<u64> {
    match tier {
        Tier::Quick => 0..1,
        Tier::Full => 0..3,
    }
}

/// Materializes one corpus entry.
fn make_entry(family: &'static str, pattern: &'static str, tier: Tier, seed: u64) -> CorpusEntry {
    let graph = make_graph(family, tier, seed);
    let instance = make_instance(pattern, &graph, tier, seed);
    let certificate = certify(&graph, &instance);
    CorpusEntry {
        id: format!("{family}/{pattern}/seed={seed}"),
        family,
        pattern,
        graph,
        instance,
        certificate,
    }
}

/// Lazily enumerates the corpus for `tier`: `FAMILIES × PATTERNS × seeds`
/// in the same stable order as [`corpus`], generating (and certifying)
/// each entry only when the consumer pulls it.
///
/// This is the streaming front door for batch consumers — the solver
/// service's job queue feeds from it without materializing the whole
/// corpus, so memory stays bounded by the jobs in flight rather than the
/// corpus size.
pub fn stream(tier: Tier) -> impl Iterator<Item = CorpusEntry> {
    FAMILIES.into_iter().flat_map(move |family| {
        PATTERNS.into_iter().flat_map(move |pattern| {
            seeds(tier).map(move |seed| make_entry(family, pattern, tier, seed))
        })
    })
}

/// Enumerates the corpus for `tier`: `FAMILIES × PATTERNS × seeds`,
/// deterministically and in a stable order ([`stream`], materialized).
pub fn corpus(tier: Tier) -> Vec<CorpusEntry> {
    stream(tier).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::CertificateKind;

    #[test]
    fn quick_corpus_is_deterministic_and_covers_the_matrix() {
        let a = corpus(Tier::Quick);
        let b = corpus(Tier::Quick);
        assert_eq!(a.len(), FAMILIES.len() * PATTERNS.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.instance, y.instance);
            assert_eq!(x.graph.edges(), y.graph.edges());
            assert_eq!(x.certificate, y.certificate);
        }
        // Ids are unique.
        let mut ids: Vec<&str> = a.iter().map(|e| e.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len());
    }

    #[test]
    fn stream_yields_the_corpus_in_order_and_lazily() {
        let streamed: Vec<String> = stream(Tier::Quick).map(|e| e.id).collect();
        let materialized: Vec<String> = corpus(Tier::Quick).into_iter().map(|e| e.id).collect();
        assert_eq!(streamed, materialized);
        // Pulling a prefix does not require generating the rest.
        let first = stream(Tier::Quick).next().expect("corpus is nonempty");
        assert_eq!(first.id, materialized[0]);
    }

    #[test]
    fn instances_are_minimal_and_certified() {
        let mut kinds = (0, 0);
        for e in corpus(Tier::Quick) {
            assert!(e.instance.is_minimal(), "{}", e.id);
            assert!(e.instance.k() >= 2, "{}", e.id);
            assert!(
                e.certificate.lower <= e.certificate.upper as f64 + 1e-9,
                "{}",
                e.id
            );
            match e.certificate.kind {
                CertificateKind::Exact => kinds.0 += 1,
                CertificateKind::Sandwich => kinds.1 += 1,
            }
        }
        // Both certificate paths must be represented in CI.
        assert!(kinds.0 > 0, "no exact certificates in quick tier");
        assert!(kinds.1 > 0, "no sandwich certificates in quick tier");
    }
}
