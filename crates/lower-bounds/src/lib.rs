//! The Section 3 lower-bound machinery: Set Disjointness reductions
//! (Figure 1) and cut-communication experiments.
//!
//! The paper proves `Ω(t/log n)` (Lemma 3.1, DSF-CR) and `Ω(k/log n)`
//! (Lemma 3.3, DSF-IC) by simulating any Steiner forest algorithm on a
//! two-party gadget graph: Alice holds the `a`-side, Bob the `b`-side, and
//! all information between them crosses a constant-size edge cut. Because
//! Set Disjointness requires `Ω(n)` bits of communication, a correct
//! algorithm must push `Ω(universe)` bits over that cut.
//!
//! This crate builds both gadgets, decodes the Set Disjointness answer from
//! a solver's output exactly as the reduction prescribes, and measures the
//! bits our algorithms actually send across the cut (experiments E9/E10).
//!
//! # Invariants
//!
//! Gadget construction and the planted Set Disjointness instances are
//! seeded-deterministic; the cut traffic is metered by the enforced
//! simulator ([`dsf_congest::CongestConfig::with_metered_cut`]), so
//! `cut_bits` is an exact count, not an estimate, and identical across
//! machines and worker-thread counts.
//!
//! # Example
//!
//! ```
//! use dsf_lower_bounds::measure_cr_gadget;
//!
//! // A disjoint instance over a universe of 6 elements: the reduction
//! // must decode "disjoint" from the solver's forest, and the bits on
//! // the Alice/Bob cut are what Lemma 3.1 lower-bounds.
//! let exp = measure_cr_gadget(6, false, 3);
//! assert!(exp.correct());
//! assert!(exp.cut_bits > 0);
//! ```

pub mod comm;
pub mod gadgets;

pub use comm::{measure_cr_gadget, measure_ic_gadget, CutExperiment};
pub use gadgets::{cr_gadget, ic_gadget, CrGadget, IcGadget, SetDisjointness};
