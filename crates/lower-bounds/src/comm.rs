//! Cut-communication experiments (E9/E10): run the paper's algorithms on
//! the Figure 1 gadgets with the Alice/Bob cut metered, decode the Set
//! Disjointness answer from the output, and report the bits that crossed.

use dsf_congest::CongestConfig;
use dsf_core::det::{solve_deterministic, DetConfig};
use dsf_core::transforms;

use crate::gadgets::{cr_gadget, ic_gadget, SetDisjointness};

/// Result of one gadget run.
#[derive(Debug, Clone)]
pub struct CutExperiment {
    /// Universe size of the Set Disjointness instance.
    pub universe: usize,
    /// Whether the planted instance was disjoint.
    pub truth_disjoint: bool,
    /// The answer decoded from the algorithm's output.
    pub decoded_disjoint: bool,
    /// Bits that crossed the metered Alice/Bob cut.
    pub cut_bits: u64,
    /// Total rounds of the run.
    pub rounds: u64,
    /// Weight of the solution.
    pub weight: u64,
}

impl CutExperiment {
    /// Whether the reduction decoded correctly.
    pub fn correct(&self) -> bool {
        self.truth_disjoint == self.decoded_disjoint
    }
}

/// Runs the deterministic algorithm on the DSF-CR gadget (Lemma 3.1):
/// requests are first transformed per Lemma 2.3 (also simulated and
/// metered), then solved; the decode checks the heavy edges.
pub fn measure_cr_gadget(universe: usize, intersect: bool, seed: u64) -> CutExperiment {
    let sd = SetDisjointness::sample_hard(universe, intersect, seed);
    let gadget = cr_gadget(&sd, 2);
    let mut congest = CongestConfig::for_graph(&gadget.graph);
    congest.metered_cut = gadget.cut.iter().copied().collect();
    let (inst, transform_ledger) = transforms::cr_to_ic(&gadget.graph, &gadget.requests, &congest)
        .expect("transform respects the model");
    let det_cfg = DetConfig {
        metered_cut: gadget.cut.clone(),
        ..DetConfig::default()
    };
    let out =
        solve_deterministic(&gadget.graph, &inst, &det_cfg).expect("solver respects the model");
    CutExperiment {
        universe,
        truth_disjoint: sd.disjoint(),
        decoded_disjoint: gadget.decode(&out.forest),
        cut_bits: transform_ledger.cut_bits() + out.rounds.cut_bits(),
        rounds: transform_ledger.total() + out.rounds.total(),
        weight: out.forest.weight(&gadget.graph),
    }
}

/// Runs the full pipeline on the DSF-IC gadget (Lemma 3.3): the
/// distributed minimalization of Lemma 2.4 (this is where the `Ω(k)` bits
/// cross the bridge — deciding which of the `k` labels spans both stars
/// *is* the Set Disjointness computation), then the deterministic solver;
/// the decode checks the `(a_0, b_0)` bridge.
pub fn measure_ic_gadget(universe: usize, intersect: bool, seed: u64) -> CutExperiment {
    let sd = SetDisjointness::sample_hard(universe, intersect, seed);
    let gadget = ic_gadget(&sd);
    let mut congest = CongestConfig::for_graph(&gadget.graph);
    congest.metered_cut = gadget.cut.iter().copied().collect();
    let (minimal, transform_ledger) =
        transforms::minimalize(&gadget.graph, &gadget.instance, &congest)
            .expect("transform respects the model");
    let det_cfg = DetConfig {
        metered_cut: gadget.cut.clone(),
        ..DetConfig::default()
    };
    let out =
        solve_deterministic(&gadget.graph, &minimal, &det_cfg).expect("solver respects the model");
    CutExperiment {
        universe,
        truth_disjoint: sd.disjoint(),
        decoded_disjoint: gadget.decode(&out.forest),
        cut_bits: transform_ledger.cut_bits() + out.rounds.cut_bits(),
        rounds: transform_ledger.total() + out.rounds.total(),
        weight: out.forest.weight(&gadget.graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_decoding_is_correct_both_ways() {
        for seed in 0..3 {
            let yes = measure_cr_gadget(8, false, seed);
            assert!(yes.correct(), "seed {seed}: YES misdecoded");
            let no = measure_cr_gadget(8, true, seed);
            assert!(no.correct(), "seed {seed}: NO misdecoded");
        }
    }

    #[test]
    fn ic_decoding_is_correct_both_ways() {
        for seed in 0..3 {
            let yes = measure_ic_gadget(10, false, seed);
            assert!(yes.correct(), "seed {seed}: YES misdecoded");
            assert_eq!(yes.weight, 0, "YES optimum is the empty forest");
            let no = measure_ic_gadget(10, true, seed);
            assert!(no.correct(), "seed {seed}: NO misdecoded");
        }
    }

    #[test]
    fn cut_bits_grow_with_universe() {
        // The Ω(k) lower bound in action: doubling the universe should
        // clearly increase the information crossing the bridge.
        let small = measure_ic_gadget(8, true, 7);
        let large = measure_ic_gadget(32, true, 7);
        assert!(
            large.cut_bits > small.cut_bits,
            "cut bits must grow: {} vs {}",
            small.cut_bits,
            large.cut_bits
        );
    }
}
