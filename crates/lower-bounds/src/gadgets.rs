//! The Figure 1 gadget constructions.

use dsf_graph::{EdgeId, GraphBuilder, NodeId, Weight, WeightedGraph};
use dsf_steiner::{ConnectionRequests, ForestSolution, Instance, InstanceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-party Set Disjointness instance over universe `[universe]`.
#[derive(Debug, Clone)]
pub struct SetDisjointness {
    /// Alice's set (membership vector).
    pub a: Vec<bool>,
    /// Bob's set.
    pub b: Vec<bool>,
}

impl SetDisjointness {
    /// Samples a *hard-regime* instance: `|A|, |B| ≈ universe/2` with
    /// `|A ∩ B| ≤ 1` (the paper notes the hard instances have this shape).
    /// With `intersect = true` exactly one common element is planted.
    pub fn sample_hard(universe: usize, intersect: bool, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = vec![false; universe];
        let mut b = vec![false; universe];
        for i in 0..universe {
            // Each element goes to A xor B (never both).
            if rng.gen_bool(0.5) {
                a[i] = true;
            } else {
                b[i] = true;
            }
        }
        if intersect {
            let i = rng.gen_range(0..universe);
            a[i] = true;
            b[i] = true;
        }
        SetDisjointness { a, b }
    }

    /// Whether `A ∩ B = ∅`.
    pub fn disjoint(&self) -> bool {
        self.a.iter().zip(&self.b).all(|(&x, &y)| !(x && y))
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.a.len()
    }
}

/// The DSF-CR gadget (Figure 1, left).
///
/// Node layout: `a_{-1} = 0`, `a_0 = 1`, `a_i = 1 + i`;
/// `b_{-1} = n+2`, `b_0 = n+3`, `b_i = n+3+i`.
#[derive(Debug)]
pub struct CrGadget {
    /// The gadget graph.
    pub graph: WeightedGraph,
    /// The connection requests (Definition 2.1 input).
    pub requests: ConnectionRequests,
    /// The 4-edge Alice/Bob cut (`E_AB`).
    pub cut: Vec<EdgeId>,
    /// The two heavy edges `(a_0,b_0)` and `(a_{-1},b_{-1})`.
    pub heavy: Vec<EdgeId>,
    /// Weight of a heavy edge: `ρ(2n+2)+1`.
    pub heavy_weight: Weight,
}

impl CrGadget {
    /// Decodes the reduction: "YES (disjoint)" iff the output avoids both
    /// heavy edges.
    pub fn decode(&self, f: &ForestSolution) -> bool {
        !self.heavy.iter().any(|&e| f.contains(e))
    }
}

/// Builds the DSF-CR gadget for `sd` with approximation budget `rho`
/// (heavy edges weigh `ρ(2n+2)+1`, so a `ρ`-approximation of a YES
/// instance cannot afford one).
pub fn cr_gadget(sd: &SetDisjointness, rho: u64) -> CrGadget {
    let n = sd.universe();
    let heavy_weight = rho * (2 * n as u64 + 2) + 1;
    let total = 2 * n + 4;
    let a_m1 = NodeId(0);
    let a_0 = NodeId(1);
    let a = |i: usize| NodeId((2 + i) as u32); // a_{i+1} for 0-based i
    let b_m1 = NodeId((n + 2) as u32);
    let b_0 = NodeId((n + 3) as u32);
    let b = |i: usize| NodeId((n + 4 + i) as u32); // b_{i+1} for 0-based i

    let mut gb = GraphBuilder::new(total);
    for i in 0..n {
        let target = if sd.a[i] { a_0 } else { a_m1 };
        gb.add_edge(a(i), target, 1).unwrap();
    }
    for i in 0..n {
        let target = if sd.b[i] { b_0 } else { b_m1 };
        gb.add_edge(b(i), target, 1).unwrap();
    }
    let heavy1 = gb.add_edge(a_0, b_0, heavy_weight).unwrap();
    let heavy2 = gb.add_edge(a_m1, b_m1, heavy_weight).unwrap();
    let light1 = gb.add_edge(a_0, b_m1, 1).unwrap();
    let light2 = gb.add_edge(a_m1, b_0, 1).unwrap();
    let graph = gb.build().expect("gadget is connected");

    let mut requests = ConnectionRequests::new(total);
    for i in 0..n {
        if sd.a[i] {
            requests.request(a(i), b(i));
        }
        if sd.b[i] {
            requests.request(b(i), a(i));
        }
    }
    CrGadget {
        graph,
        requests,
        cut: vec![heavy1, heavy2, light1, light2],
        heavy: vec![heavy1, heavy2],
        heavy_weight,
    }
}

/// The DSF-IC gadget (Figure 1, right): two unit-weight stars joined by
/// `(a_0, b_0)`; element `i ∈ A ∩ B` forces that edge into any solution.
#[derive(Debug)]
pub struct IcGadget {
    /// The gadget graph.
    pub graph: WeightedGraph,
    /// The DSF-IC instance.
    pub instance: Instance,
    /// The single cut edge `(a_0, b_0)`.
    pub cut: Vec<EdgeId>,
    /// Same edge, for decoding.
    pub bridge: EdgeId,
}

impl IcGadget {
    /// Decodes the reduction: "YES (disjoint)" iff the bridge is unused.
    pub fn decode(&self, f: &ForestSolution) -> bool {
        !f.contains(self.bridge)
    }
}

/// Builds the DSF-IC gadget.
pub fn ic_gadget(sd: &SetDisjointness) -> IcGadget {
    let n = sd.universe();
    let a_0 = NodeId(0);
    let a = |i: usize| NodeId(1 + i as u32);
    let b_0 = NodeId((n + 1) as u32);
    let b = |i: usize| NodeId((n + 2 + i) as u32);
    let mut gb = GraphBuilder::new(2 * n + 2);
    for i in 0..n {
        gb.add_edge(a_0, a(i), 1).unwrap();
        gb.add_edge(b_0, b(i), 1).unwrap();
    }
    let bridge = gb.add_edge(a_0, b_0, 1).unwrap();
    let graph = gb.build().expect("gadget is connected");

    let mut ib = InstanceBuilder::new(&graph);
    for i in 0..n {
        match (sd.a[i], sd.b[i]) {
            (true, true) => ib = ib.component(&[a(i), b(i)]),
            (true, false) => ib = ib.component(&[a(i)]),
            (false, true) => ib = ib.component(&[b(i)]),
            (false, false) => {}
        }
    }
    let instance = ib.build().expect("labels are per-element");
    IcGadget {
        graph,
        instance,
        cut: vec![bridge],
        bridge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_controls_intersection() {
        for seed in 0..10 {
            let yes = SetDisjointness::sample_hard(40, false, seed);
            assert!(yes.disjoint());
            let no = SetDisjointness::sample_hard(40, true, seed);
            assert!(!no.disjoint());
            let common = no.a.iter().zip(&no.b).filter(|(&x, &y)| x && y).count();
            assert_eq!(common, 1);
        }
    }

    #[test]
    fn cr_gadget_shape() {
        let sd = SetDisjointness::sample_hard(12, false, 1);
        let gadget = cr_gadget(&sd, 2);
        assert_eq!(gadget.graph.n(), 2 * 12 + 4);
        assert_eq!(gadget.cut.len(), 4);
        assert_eq!(gadget.heavy_weight, 2 * 26 + 1);
        // Diameter at most 4 (paper's Lemma 3.1 statement).
        assert!(dsf_graph::metrics::unweighted_diameter(&gadget.graph) <= 4);
    }

    #[test]
    fn cr_yes_instance_solvable_without_heavy_edges() {
        let sd = SetDisjointness::sample_hard(10, false, 2);
        let gadget = cr_gadget(&sd, 2);
        let inst = gadget.requests.to_components(&gadget.graph);
        let run = dsf_steiner::moat::grow(&gadget.graph, &inst);
        assert!(inst.is_feasible(&gadget.graph, &run.forest));
        assert!(gadget.decode(&run.forest), "YES instance used a heavy edge");
    }

    #[test]
    fn cr_no_instance_forces_heavy_edge() {
        let sd = SetDisjointness::sample_hard(10, true, 3);
        let gadget = cr_gadget(&sd, 2);
        let inst = gadget.requests.to_components(&gadget.graph);
        let run = dsf_steiner::moat::grow(&gadget.graph, &inst);
        assert!(inst.is_feasible(&gadget.graph, &run.forest));
        assert!(
            !gadget.decode(&run.forest),
            "NO instance avoided heavy edges"
        );
    }

    #[test]
    fn ic_gadget_decoding() {
        let yes = ic_gadget(&SetDisjointness::sample_hard(15, false, 4));
        let run = dsf_steiner::moat::grow(&yes.graph, &yes.instance);
        assert!(yes.decode(&run.forest));
        // Optimal weight of a YES instance is 0.
        assert!(run.forest.is_empty());

        let no = ic_gadget(&SetDisjointness::sample_hard(15, true, 4));
        let run = dsf_steiner::moat::grow(&no.graph, &no.instance);
        assert!(no.instance.is_feasible(&no.graph, &run.forest));
        assert!(!no.decode(&run.forest));
    }

    #[test]
    fn ic_gadget_diameter_is_three() {
        let g = ic_gadget(&SetDisjointness::sample_hard(8, false, 5));
        assert_eq!(dsf_graph::metrics::unweighted_diameter(&g.graph), 3);
    }
}
