//! Workspace smoke test: every prelude export resolves and both paper
//! algorithms produce feasible forests on a small fixed graph.
//!
//! This is the first test a fresh checkout should run — it exercises the
//! whole dependency DAG (graph → congest → steiner → embed → core) through
//! the umbrella crate's public surface only.

use steiner_forest::prelude::*;

/// A fixed 9-node graph: a 3×3 grid with unit-ish weights, two input
/// components in opposite corners. Small enough to eyeball, rich enough to
/// force at least one non-trivial merge per component.
fn fixed_graph() -> WeightedGraph {
    let mut b = GraphBuilder::new(9);
    // Grid rows.
    let rows = [
        (0u32, 1u32, 2u64),
        (1, 2, 3),
        (3, 4, 1),
        (4, 5, 2),
        (6, 7, 2),
        (7, 8, 1),
    ];
    // Grid columns.
    let cols = [
        (0u32, 3u32, 1u64),
        (3, 6, 2),
        (1, 4, 2),
        (4, 7, 3),
        (2, 5, 1),
        (5, 8, 2),
    ];
    for (u, v, w) in rows.into_iter().chain(cols) {
        b.add_edge(NodeId(u), NodeId(v), w).unwrap();
    }
    b.build().unwrap()
}

fn fixed_instance(g: &WeightedGraph) -> Instance {
    InstanceBuilder::new(g)
        .component(&[NodeId(0), NodeId(8)])
        .component(&[NodeId(2), NodeId(6)])
        .build()
        .unwrap()
}

#[test]
fn prelude_exports_resolve() {
    // Touch every prelude export so a broken re-export fails this test
    // (and not just an unlucky downstream user).
    let g: WeightedGraph = fixed_graph();
    let e: EdgeId = EdgeId(0);
    let w: Weight = g.weight(e);
    assert_eq!(w, g.edges()[0].w);
    let params = metrics::parameters(&g);
    assert!(metrics::parameters_consistent(&params));
    let gen_g = generators::gnp_connected(12, 0.3, 5, 7);
    assert!(gen_g.is_connected());

    let inst: Instance = fixed_instance(&g);
    assert_eq!(inst.k(), 2);
    let label: Option<ComponentId> = inst.label(NodeId(0));
    assert!(label.is_some());

    let mut cr = ConnectionRequests::new(g.n());
    cr.request(NodeId(0), NodeId(8));
    assert_eq!(cr.terminals(), vec![NodeId(0), NodeId(8)]);

    let cfg = CongestConfig::for_graph(&g);
    assert!(cfg.bandwidth_bits > 0);
    let ledger = RoundLedger::new();
    assert_eq!(ledger.total(), 0);

    let empty: ForestSolution = std::iter::empty::<EdgeId>().collect();
    assert!(!inst.is_feasible(&g, &empty));
}

#[test]
fn solve_deterministic_is_feasible_on_fixed_graph() {
    let g = fixed_graph();
    let inst = fixed_instance(&g);
    let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
    assert!(
        inst.is_feasible(&g, &out.forest),
        "deterministic forest infeasible"
    );
    assert!(out.forest.is_forest(&g));
    assert!(out.forest.weight(&g) > 0);
    assert!(out.rounds.total() > 0);
}

#[test]
fn solve_randomized_is_feasible_on_fixed_graph() {
    let g = fixed_graph();
    let inst = fixed_instance(&g);
    let out = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
    assert!(
        inst.is_feasible(&g, &out.forest),
        "randomized forest infeasible"
    );
    assert!(out.forest.weight(&g) > 0);
    assert!(out.rounds.total() > 0);
}

#[test]
fn both_solvers_agree_on_feasibility_across_seeds() {
    let g = fixed_graph();
    let inst = fixed_instance(&g);
    for seed in 0..5u64 {
        let cfg = RandConfig {
            seed,
            ..RandConfig::default()
        };
        let out = solve_randomized(&g, &inst, &cfg).unwrap();
        assert!(
            inst.is_feasible(&g, &out.forest),
            "randomized solver infeasible at seed {seed}"
        );
    }
}
