//! Oracle mutation self-test: prove the conformance gate can *fail*.
//!
//! Every other tier asserts that correct solvers pass the oracle; none of
//! them would notice an oracle that accepts everything. This tier feeds
//! deliberately broken solutions into the same
//! `workloads::conformance::check_solution` seam `check_entry` routes all
//! solvers through, and asserts each defect class is rejected with the
//! right error:
//!
//! * **dropped edge** — a demand pair left disconnected → "disconnected";
//! * **added cycle** — a redundant edge closing a cycle → "cycle";
//! * **inflated weight** — a feasible forest past the certified ratio
//!   envelope → "exceeds".
//!
//! Plus the converse: the known-good solution passes, so the rejections
//! above are the oracle discriminating, not refusing everything.
//!
//! The churn-differential gate (`check_repaired`) gets the same
//! treatment: a stale cached forest that missed a newly added pair, a
//! corrupted rollback that left a dangling edge, and a repair heavier
//! than the from-scratch solve are each rejected.

use steiner_forest::prelude::*;
use steiner_forest::workloads::certify;
use steiner_forest::workloads::conformance::{check_repaired, check_solution};
use steiner_forest::workloads::corpus::{corpus, Tier};
use steiner_forest::workloads::CertificateKind;

/// A fixture where every defect class is expressible: square 0-1-2-3-0
/// with a cheap side (0-1-2, unit edges) and a heavy side (0-3-2, weight
/// 100 each), demand {0, 2}. The certificate is exact (k=1, t=2): OPT=2.
fn fixture() -> (
    WeightedGraph,
    steiner_forest::steiner::Instance,
    steiner_forest::workloads::Certificate,
) {
    let mut b = GraphBuilder::new(4);
    b.add_edge(NodeId(0), NodeId(1), 1).unwrap(); // e0
    b.add_edge(NodeId(1), NodeId(2), 1).unwrap(); // e1
    b.add_edge(NodeId(2), NodeId(3), 100).unwrap(); // e2
    b.add_edge(NodeId(3), NodeId(0), 100).unwrap(); // e3
    let g = b.build().unwrap();
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(2)])
        .build()
        .unwrap();
    let cert = certify(&g, &inst);
    assert_eq!(cert.kind, CertificateKind::Exact);
    assert_eq!(cert.upper, 2, "fixture OPT must be the cheap side");
    (g, inst, cert)
}

#[test]
fn known_good_solution_is_accepted() {
    let (g, inst, cert) = fixture();
    let good = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1)]);
    let v = check_solution(&g, &inst, &cert, "good", &good, 2.0, 0.0);
    assert!(v.is_empty(), "oracle rejected the optimum: {v:?}");
}

#[test]
fn dropped_edge_is_rejected_as_infeasible() {
    let (g, inst, cert) = fixture();
    // Drop e1 from the optimum: terminal 2 is cut off.
    let broken = ForestSolution::from_edges(vec![EdgeId(0)]);
    let v = check_solution(&g, &inst, &cert, "dropped", &broken, 2.0, 0.0);
    assert!(
        v.iter().any(|e| e.contains("disconnected")),
        "missing the disconnection error: {v:?}"
    );
}

#[test]
fn added_cycle_is_rejected_as_non_forest() {
    let (g, inst, cert) = fixture();
    // All four edges: feasible, but the square is a cycle. Keep the
    // envelope loose so only the cycle check can fire.
    let cyclic = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]);
    let v = check_solution(&g, &inst, &cert, "cyclic", &cyclic, 1000.0, 0.0);
    assert_eq!(v.len(), 1, "exactly the cycle error: {v:?}");
    assert!(v[0].contains("cycle"), "{v:?}");
}

#[test]
fn inflated_weight_is_rejected_past_the_certificate() {
    let (g, inst, cert) = fixture();
    // The heavy detour: feasible, acyclic, weight 200 = 100·OPT.
    let heavy = ForestSolution::from_edges(vec![EdgeId(2), EdgeId(3)]);
    let v = check_solution(&g, &inst, &cert, "inflated", &heavy, 2.0, 0.0);
    assert_eq!(v.len(), 1, "exactly the ratio error: {v:?}");
    assert!(v[0].contains("exceeds"), "{v:?}");
    // And the violation names the offending solver tag.
    assert!(v[0].contains("[inflated]"), "{v:?}");
}

#[test]
fn empty_solution_against_real_demand_is_rejected() {
    let (g, inst, cert) = fixture();
    let v = check_solution(
        &g,
        &inst,
        &cert,
        "empty",
        &ForestSolution::empty(),
        2.0,
        0.0,
    );
    assert!(v.iter().any(|e| e.contains("disconnected")), "{v:?}");
    // The lower-bound check fires too: weight 0 < certified lower 2.
    assert!(v.iter().any(|e| e.contains("lower bound")), "{v:?}");
}

/// A stale cached forest — the session served its pre-delta solution
/// without repairing in the newly added pair — leaves the new pair
/// disconnected, and the churn gate must say so.
#[test]
fn stale_cached_forest_is_rejected_by_the_churn_gate() {
    let (g, _, _) = fixture();
    // Post-delta instance: the old pair {0, 2} plus the new arrival
    // {1, 3}. The stale forest still solves only the old pair.
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(2)])
        .component(&[NodeId(1), NodeId(3)])
        .build()
        .unwrap();
    let cert = certify(&g, &inst);
    let stale = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1)]);
    let scratch = steiner_forest::workloads::conformance::scratch_solve(&g, &inst);
    let v = check_repaired(&g, &inst, &cert, &stale, scratch.weight(&g));
    assert!(
        v.iter().any(|e| e.contains("disconnected")),
        "stale forest must fail feasibility on the post-delta instance: {v:?}"
    );
}

/// A corrupted rollback — the removal dropped the demand but left one of
/// its edges behind — yields a feasible, acyclic, within-ratio forest
/// that only the minimality check can catch.
#[test]
fn dangling_rollback_edge_is_rejected_by_the_churn_gate() {
    // Path 0-1-2 (unit edges) with a unit stub 2-3; demand {0, 2}. The
    // stub is the dangling residue of a departed {3, ...} component.
    let mut b = GraphBuilder::new(4);
    b.add_edge(NodeId(0), NodeId(1), 1).unwrap(); // e0
    b.add_edge(NodeId(1), NodeId(2), 1).unwrap(); // e1
    b.add_edge(NodeId(2), NodeId(3), 1).unwrap(); // e2: the residue
    let g = b.build().unwrap();
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(2)])
        .build()
        .unwrap();
    let cert = certify(&g, &inst);
    let corrupted = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
    // Generous scratch budget: only the minimality defect can fire.
    let v = check_repaired(&g, &inst, &cert, &corrupted, 3);
    assert_eq!(v.len(), 1, "exactly the minimality error: {v:?}");
    assert!(v[0].contains("minimal"), "{v:?}");
    // The honest scratch weight (2) additionally trips the
    // repair-never-heavier gate.
    let v = check_repaired(&g, &inst, &cert, &corrupted, 2);
    assert!(
        v.iter().any(|e| e.contains("exceeds the from-scratch")),
        "{v:?}"
    );
    // And the clean rollback passes: the gate discriminates.
    let clean = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1)]);
    assert!(check_repaired(&g, &inst, &cert, &clean, 2).is_empty());
}

/// The same three defect classes, injected on a *real* corpus entry (the
/// first quick-tier instance) rather than a hand-built fixture: mutate
/// the centralized moat solution and assert the oracle notices each time.
#[test]
fn mutated_corpus_solutions_are_rejected() {
    let entry = &corpus(Tier::Quick)[0];
    let (g, inst, cert) = (&entry.graph, &entry.instance, &entry.certificate);
    let good = steiner_forest::steiner::moat::grow(g, inst).forest;
    assert!(
        check_solution(g, inst, cert, "moat", &good, 2.0, 0.0).is_empty(),
        "baseline moat solution must pass"
    );

    // Dropped edge: remove one solution edge → some pair disconnects
    // (the moat forest is minimal, so every edge is load-bearing).
    let dropped: ForestSolution = good.edges()[1..].iter().copied().collect();
    let v = check_solution(g, inst, cert, "dropped", &dropped, 2.0, 0.0);
    assert!(v.iter().any(|e| e.contains("disconnected")), "{v:?}");

    // Added cycle: close a cycle with any non-solution edge inside one
    // tree (exists: corpus graphs are connected with m > n-1).
    let comps = g.components_of(good.edges());
    let chord = (0..g.m() as u32).map(EdgeId).find(|&e| {
        let ed = g.edge(e);
        !good.contains(e) && comps[ed.u.idx()] == comps[ed.v.idx()]
    });
    if let Some(chord) = chord {
        let cyclic = good.union(&ForestSolution::from_edges(vec![chord]));
        let v = check_solution(g, inst, cert, "cyclic", &cyclic, 1000.0, 0.0);
        assert!(v.iter().any(|e| e.contains("cycle")), "{v:?}");
    }

    // Inflated weight: the full edge set of the graph is feasible but far
    // past 2·upper on every corpus graph (and cyclic; check both fire).
    let everything: ForestSolution = (0..g.m() as u32).map(EdgeId).collect();
    let v = check_solution(g, inst, cert, "inflated", &everything, 2.0, 0.0);
    assert!(v.iter().any(|e| e.contains("exceeds")), "{v:?}");
}
