//! Failure injection: the simulator must *reject* runs that violate the
//! CONGEST model, and the solvers must surface those rejections instead of
//! silently producing numbers — that enforcement is what makes the round
//! counts in EXPERIMENTS.md meaningful.

use steiner_forest::congest::{run, CongestConfig, Message, NodeCtx, Outbox, Protocol, SimError};
use steiner_forest::prelude::*;
use steiner_forest::steiner::random_instance;

#[test]
fn starved_bandwidth_aborts_deterministic_solver() {
    let g = generators::gnp_connected(16, 0.25, 10, 1);
    let inst = random_instance(&g, 2, 2, 1);
    let cfg = DetConfig {
        bandwidth_bits: Some(4), // far below any real message
        ..DetConfig::default()
    };
    let err = solve_deterministic(&g, &inst, &cfg).unwrap_err();
    assert!(
        matches!(err, SimError::BandwidthExceeded { .. }),
        "expected a bandwidth violation, got {err:?}"
    );
}

#[test]
fn starved_bandwidth_aborts_randomized_solver() {
    let g = generators::gnp_connected(16, 0.25, 10, 2);
    let inst = random_instance(&g, 2, 2, 2);
    let cfg = RandConfig {
        bandwidth_bits: Some(4),
        ..RandConfig::default()
    };
    let err = solve_randomized(&g, &inst, &cfg).unwrap_err();
    assert!(matches!(err, SimError::BandwidthExceeded { .. }));
}

#[test]
fn generous_bandwidth_does_not_change_outputs() {
    // Round counts and outputs are bandwidth-independent as long as every
    // message fits: the protocols never pack more than O(log n) bits.
    let g = generators::gnp_connected(18, 0.2, 10, 3);
    let inst = random_instance(&g, 3, 2, 3);
    let tight = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
    let loose = solve_deterministic(
        &g,
        &inst,
        &DetConfig {
            bandwidth_bits: Some(1 << 20),
            ..DetConfig::default()
        },
    )
    .unwrap();
    assert_eq!(tight.forest, loose.forest);
    assert_eq!(tight.rounds.total(), loose.rounds.total());
}

/// A malicious protocol that messages a non-neighbor.
#[derive(Debug)]
struct Reacher {
    fired: bool,
}

#[derive(Debug, Clone)]
struct Ping;
impl Message for Ping {
    fn encoded_bits(&self) -> usize {
        1
    }
}

impl Protocol for Reacher {
    type Msg = Ping;
    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Ping>) {
        if ctx.id == NodeId(0) {
            // Node 0 tries to reach the far end of the path directly.
            out.send(NodeId((ctx.n - 1) as u32), Ping);
        }
        self.fired = true;
    }
    fn round(&mut self, _: &NodeCtx, _: &[(NodeId, Ping)], _: &mut Outbox<Ping>) {}
    fn done(&self) -> bool {
        self.fired
    }
}

#[test]
fn non_neighbor_sends_are_rejected() {
    let g = generators::path(5, 1);
    let nodes = (0..5).map(|_| Reacher { fired: false }).collect();
    let err = run(&g, nodes, &CongestConfig::for_graph(&g)).unwrap_err();
    assert!(matches!(err, SimError::NotANeighbor { .. }));
}

#[test]
fn max_rounds_guard_reports_instead_of_hanging() {
    let g = generators::gnp_connected(20, 0.2, 10, 4);
    let inst = random_instance(&g, 3, 2, 4);
    // Absurdly low cap: some stage must trip it.
    let mut congest = CongestConfig::for_graph(&g);
    congest.max_rounds = 1;
    let err =
        steiner_forest::core::primitives::build_bfs_tree(&g, NodeId(0), &congest).unwrap_err();
    assert!(matches!(err, SimError::MaxRoundsExceeded { .. }));
    // And the full solver still works with the default guard.
    assert!(solve_deterministic(&g, &inst, &DetConfig::default()).is_ok());
}

#[test]
fn adversarial_weights_heavy_bridge() {
    // Two cliques joined by a single very heavy bridge: the algorithms must
    // still terminate and only buy the bridge when a component spans it.
    let mut b = GraphBuilder::new(12);
    for i in 0..6u32 {
        for j in (i + 1)..6 {
            b.add_edge(NodeId(i), NodeId(j), 2).unwrap();
            b.add_edge(NodeId(i + 6), NodeId(j + 6), 2).unwrap();
        }
    }
    b.add_edge(NodeId(5), NodeId(6), 1_000_000).unwrap();
    let g = b.build().unwrap();

    // Components entirely inside the cliques: bridge unused.
    let local = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(3)])
        .component(&[NodeId(7), NodeId(11)])
        .build()
        .unwrap();
    let out = solve_deterministic(&g, &local, &DetConfig::default()).unwrap();
    let bridge = g.find_edge(NodeId(5), NodeId(6)).unwrap();
    assert!(!out.forest.contains(bridge), "bridge bought unnecessarily");

    // A spanning component: bridge required.
    let spanning = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(11)])
        .build()
        .unwrap();
    let out = solve_deterministic(&g, &spanning, &DetConfig::default()).unwrap();
    assert!(out.forest.contains(bridge));
    assert!(spanning.is_feasible(&g, &out.forest));
}

#[test]
fn unit_weight_ties_everywhere_stay_consistent() {
    // All weights equal: maximal tie pressure on the event ordering; the
    // distributed and centralized runs must still produce identical merge
    // sequences (the lexicographic tie-breaks of Definition 4.12).
    for seed in 0..4 {
        let g = generators::gnp_connected(14, 0.35, 1, seed);
        let inst = random_instance(&g, 3, 2, seed);
        let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        let central = steiner_forest::steiner::moat::grow(&g, &inst);
        let dp: Vec<_> = det.merges.iter().map(|m| (m.v, m.w)).collect();
        let cp: Vec<_> = central.merges.iter().map(|m| (m.v, m.w)).collect();
        assert_eq!(dp, cp, "seed {seed}");
        assert!(inst.is_feasible(&g, &det.forest));
    }
}
