//! End-to-end streaming-server test through the umbrella crate's public
//! surface: a mixed small/large job stream must come back bit-identical
//! to direct solves, and the control features (priorities, deadlines,
//! cancellation, saturation) must be observable — never silent.

use std::sync::Arc;
use std::time::Duration;

use steiner_forest::prelude::*;

/// A 24-node "small" workload and a 100-node grid "large" workload, with
/// the server's threshold set so the grid takes the sharded large lane.
fn mixed_workloads() -> (
    (Arc<WeightedGraph>, Instance),
    (Arc<WeightedGraph>, Instance),
) {
    let small_g = Arc::new(generators::gnp_connected(24, 0.18, 9, 11));
    let small_inst = InstanceBuilder::new(&small_g)
        .component(&[NodeId(1), NodeId(12), NodeId(22)])
        .component(&[NodeId(5), NodeId(18)])
        .build()
        .unwrap();
    let large_g = Arc::new(generators::grid(10, 10, 8, 1));
    let large_inst = InstanceBuilder::new(&large_g)
        .component(&[NodeId(0), NodeId(99)])
        .component(&[NodeId(9), NodeId(90)])
        .build()
        .unwrap();
    ((small_g, small_inst), (large_g, large_inst))
}

#[test]
fn mixed_stream_is_bit_identical_to_direct_solves() {
    let ((small_g, small_inst), (large_g, large_inst)) = mixed_workloads();
    let mut server = StreamingServer::new(ServerConfig {
        workers: 3,
        large_node_threshold: large_g.n(),
        ..Default::default()
    });

    // Interleave every solver kind over the small graph with two large
    // sharded jobs, all in flight at once.
    let mut requests = Vec::new();
    for (i, kind) in SolverKind::ALL.into_iter().cycle().take(8).enumerate() {
        requests.push(SolveRequest::new(
            format!("small/{}/{i}", kind.name()),
            small_g.clone(),
            small_inst.clone(),
            kind,
            i as u64,
        ));
    }
    for seed in 0..2 {
        requests.push(SolveRequest::new(
            format!("large/det/{seed}"),
            large_g.clone(),
            large_inst.clone(),
            SolverKind::Deterministic,
            seed,
        ));
    }

    let handles: Vec<_> = requests
        .iter()
        .map(|r| server.submit(r.clone()).expect("admitted"))
        .collect();
    for (handle, req) in handles.iter().zip(&requests) {
        let result = handle
            .wait_timeout(Duration::from_secs(120))
            .expect("job drains");
        let reference = SolverSession::new().solve(req).expect("clean solve");
        assert!(
            result
                .status
                .outcome()
                .expect("completed")
                .deterministic_eq(&reference),
            "queued job {} drifted from its direct solve",
            req.id
        );
    }
    server.shutdown();
}

#[test]
fn control_plane_is_observable_end_to_end() {
    let ((g, inst), _) = mixed_workloads();
    let mut server = StreamingServer::new(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        admission: AdmissionPolicy::Reject,
        ..Default::default()
    });
    server.pause();

    let req =
        |id: &str, seed| SolveRequest::new(id, g.clone(), inst.clone(), SolverKind::Khan, seed);
    let doomed = server
        .submit_with(req("doomed", 0), JobOptions::default().with_priority(1))
        .expect("admitted");
    let expired = server
        .submit_with(
            req("expired", 1),
            JobOptions::default().with_deadline_in(Duration::ZERO),
        )
        .expect("admitted");
    // Queue (capacity 2) is now full: saturation is an error, not a hang.
    assert_eq!(
        server.submit(req("overflow", 2)).unwrap_err(),
        ServerError::Saturated { capacity: 2 }
    );
    assert!(doomed.cancel());
    server.resume();

    assert!(matches!(doomed.wait().status, JobStatus::Cancelled));
    assert!(matches!(expired.wait().status, JobStatus::DeadlineExpired));
    server.shutdown();
    // Both control outcomes also reached the shared result stream.
    let mut streamed: Vec<String> = std::iter::from_fn(|| server.try_next_result())
        .map(|r| r.id)
        .collect();
    streamed.sort();
    assert_eq!(streamed, ["doomed", "expired"]);
}
