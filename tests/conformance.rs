//! The conformance tier: every solver against the full quick corpus
//! (8 graph families × 4 demand patterns), with per-instance certificates.
//!
//! For each entry the oracle (`workloads::conformance`) asserts:
//! feasibility and forest-ness of every output, the paper's ratio bounds
//! against the certificate (det ≤ 2·OPT with tie slack, moat ≤ 2·dual,
//! rounded ≤ (2+ε)·OPT, randomized/Khan ≤ O(log n)·OPT, greedy and its
//! local-search post-processing within the constant `GREEDY_FACTOR`
//! envelope, the improver never above the greedy weight), the Lemma 4.13
//! merge-for-merge agreement between the distributed deterministic solver
//! and centralized Algorithm 1, bit-identical determinism across repeated
//! seeded runs, and the CONGEST `B`-bit per-edge bandwidth budget on every
//! round-ledger stage.

use std::sync::Arc;

use steiner_forest::congest::{run, CongestConfig, Message, NodeCtx, Outbox, Protocol, RunMetrics};
use steiner_forest::prelude::*;
use steiner_forest::service::{ServiceConfig, SolveRequest, SolverKind, SolverService};
use steiner_forest::workloads::conformance::{self, check_entry};
use steiner_forest::workloads::corpus::{corpus, stream, Tier, FAMILIES, PATTERNS};
use steiner_forest::workloads::CertificateKind;

#[test]
fn corpus_covers_the_family_pattern_matrix() {
    let entries = corpus(Tier::Quick);
    // Acceptance floor: at least 8 family × pattern combinations; the
    // quick tier actually crosses all 8 families with all 4 patterns.
    let mut combos: Vec<(&str, &str)> = entries.iter().map(|e| (e.family, e.pattern)).collect();
    combos.sort_unstable();
    combos.dedup();
    assert!(combos.len() >= 8, "only {} combinations", combos.len());
    assert_eq!(combos.len(), FAMILIES.len() * PATTERNS.len());
    // Both certificate kinds are exercised in CI.
    assert!(entries
        .iter()
        .any(|e| e.certificate.kind == CertificateKind::Exact));
    assert!(entries
        .iter()
        .any(|e| e.certificate.kind == CertificateKind::Sandwich));
}

#[test]
fn all_solvers_conform_on_the_quick_corpus() {
    let mut checked = 0;
    // Per-family (sum of ratios, entry count) for the beat-the-det gate.
    let mut family_sums: Vec<(&str, [u64; 2], u64)> = Vec::new();
    for entry in corpus(Tier::Quick) {
        let outcome = check_entry(&entry);
        assert!(
            outcome.violations.is_empty(),
            "{}: {:#?}",
            entry.id,
            outcome.violations
        );
        // Every centralized/sequential/distributed solver produced a record.
        let solvers: Vec<&str> = outcome.records.iter().map(|r| r.solver).collect();
        assert_eq!(
            solvers,
            vec![
                "moat",
                "moat_rounded",
                "greedy",
                "greedy+local_search",
                "det",
                "randomized",
                "khan"
            ],
            "{}",
            entry.id
        );
        let upper = entry.certificate.upper.max(1);
        let ratio_of = |name: &str| {
            let r = outcome.records.iter().find(|r| r.solver == name).unwrap();
            (1000 * r.weight).div_ceil(upper)
        };
        let sums = match family_sums.iter_mut().find(|(f, _, _)| *f == entry.family) {
            Some((_, sums, count)) => {
                *count += 1;
                sums
            }
            None => {
                family_sums.push((entry.family, [0, 0], 1));
                &mut family_sums.last_mut().unwrap().1
            }
        };
        sums[0] += ratio_of("greedy+local_search");
        sums[1] += ratio_of("det");
        checked += 1;
    }
    assert_eq!(checked, FAMILIES.len() * PATTERNS.len());
    // Beat-the-2 acceptance: the improved greedy matches or beats det's
    // mean ratio on at least half of the graph families.
    let beaten = family_sums
        .iter()
        .filter(|(_, [ls, det], _)| ls <= det)
        .count();
    assert!(
        2 * beaten >= family_sums.len(),
        "greedy+local_search beats det on only {beaten} of {} families: {family_sums:?}",
        family_sums.len()
    );
}

/// A one-token flood, the minimal protocol that touches every edge.
#[derive(Clone, Debug)]
struct Token;

impl Message for Token {
    fn encoded_bits(&self) -> usize {
        8
    }
}

struct Flood {
    have: bool,
    sent: bool,
}

impl Protocol for Flood {
    type Msg = Token;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
        if ctx.id == NodeId(0) {
            self.have = true;
            out.send_all(ctx, Token);
            self.sent = true;
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
        if !inbox.is_empty() {
            self.have = true;
        }
        if self.have && !self.sent {
            out.send_all(ctx, Token);
            self.sent = true;
        }
    }

    fn done(&self) -> bool {
        self.have
    }
}

fn budget_invariants(metrics: &RunMetrics, bandwidth_bits: usize, ctx: &str) {
    assert!(
        metrics.max_message_bits <= bandwidth_bits,
        "{ctx}: a {}-bit message exceeded B = {bandwidth_bits}",
        metrics.max_message_bits
    );
    assert!(
        metrics.total_bits <= metrics.messages * bandwidth_bits as u64,
        "{ctx}: {} bits over {} messages exceed the per-message budget",
        metrics.total_bits,
        metrics.messages
    );
    assert!(
        metrics.cut_bits <= metrics.total_bits,
        "{ctx}: metered-cut bits exceed total bits"
    );
}

#[test]
fn congest_bandwidth_budget_holds_across_the_corpus() {
    for entry in corpus(Tier::Quick) {
        let g = &entry.graph;
        let cfg = CongestConfig::for_graph(g);

        // Raw executor replay: a full-coverage flood over the corpus graph.
        let nodes = g
            .nodes()
            .map(|_| Flood {
                have: false,
                sent: false,
            })
            .collect();
        let res = run(g, nodes, &cfg).unwrap();
        assert!(
            res.states.iter().all(|s| s.have),
            "{}: flood died",
            entry.id
        );
        budget_invariants(&res.metrics, cfg.bandwidth_bits, &entry.id);

        // Solver replay: every ledger stage respects the per-edge budget
        // (`bits`/`cut_bits` were recorded from day one but never
        // asserted). The full per-solver sweep lives in `check_entry`
        // (asserted by `all_solvers_conform_on_the_quick_corpus`); here
        // one solver run suffices to pin the ledger-level invariant with
        // a dedicated, debuggable failure.
        let det = solve_deterministic(g, &entry.instance, &DetConfig::default()).unwrap();
        conformance::assert_ledger_budget(&det.rounds, cfg.bandwidth_bits, &entry.id);
        assert!(
            det.rounds.simulated() > 0,
            "{}: nothing simulated",
            entry.id
        );
    }
}

/// The direct (one-shot) twin of a service job: the same `solve_*` call
/// the service dispatches, reduced to the comparable fields.
fn direct_solve(req: &SolveRequest) -> (ForestSolution, RoundLedger) {
    use steiner_forest::baselines::khan::{solve_khan, KhanConfig};
    use steiner_forest::baselines::solve_collect_at_root;
    use steiner_forest::core::randomized::{solve_randomized, RandConfig};
    let g = req.graph.as_ref();
    match req.solver {
        SolverKind::Deterministic => {
            let o = solve_deterministic(g, &req.instance, &DetConfig::default()).unwrap();
            (o.forest, o.rounds)
        }
        SolverKind::Randomized => {
            let cfg = RandConfig {
                seed: req.seed,
                ..RandConfig::default()
            };
            let o = solve_randomized(g, &req.instance, &cfg).unwrap();
            (o.forest, o.rounds)
        }
        SolverKind::Khan => {
            let cfg = KhanConfig {
                seed: req.seed,
                ..KhanConfig::default()
            };
            let o = solve_khan(g, &req.instance, &cfg).unwrap();
            (o.forest, o.rounds)
        }
        SolverKind::CollectAtRoot => {
            let o = solve_collect_at_root(g, &req.instance).unwrap();
            (o.forest, o.rounds)
        }
    }
}

/// The differential gate also covers the service path: every corpus entry
/// × solver kind runs as one batched job, and each outcome must be
/// bit-identical — forest and full round ledger — to the direct one-shot
/// solver call, feasible, and at least the certified lower bound. The
/// service re-checks the `B`-bit ledger budget per job itself
/// (`report.violations`).
#[test]
fn service_path_matches_the_direct_solver_path_on_the_corpus() {
    let mut requests = Vec::new();
    let mut certificates = Vec::new();
    for entry in stream(Tier::Quick) {
        let g = Arc::new(entry.graph.clone());
        for solver in SolverKind::ALL {
            requests.push(
                SolveRequest::new(
                    format!("{}/{}", entry.id, solver.name()),
                    g.clone(),
                    entry.instance.clone(),
                    solver,
                    1,
                )
                .with_cert_upper(entry.certificate.upper),
            );
            certificates.push(entry.certificate.clone());
        }
    }

    let mut service = SolverService::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    let report = service.run_batch(&requests).unwrap();
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert_eq!(report.jobs.len(), requests.len());

    for ((job, req), cert) in report.jobs.iter().zip(&requests).zip(&certificates) {
        let (forest, ledger) = direct_solve(req);
        assert_eq!(
            job.forest, forest,
            "{}: service forest diverges from the direct solve",
            job.id
        );
        assert_eq!(
            job.ledger, ledger,
            "{}: service ledger diverges from the direct solve",
            job.id
        );
        conformance::assert_feasible_forest(&req.graph, &req.instance, &job.forest, &job.id);
        assert!(
            job.weight as f64 >= cert.lower - 1e-6,
            "{}: weight {} below certified lower bound {}",
            job.id,
            job.weight,
            cert.lower
        );
    }
}

#[test]
fn certificates_are_internally_consistent() {
    for entry in corpus(Tier::Quick) {
        let cert = &entry.certificate;
        assert!(
            cert.lower <= cert.upper as f64 + 1e-9,
            "{}: inverted certificate",
            entry.id
        );
        if cert.kind == CertificateKind::Exact {
            assert_eq!(cert.lower, cert.upper as f64, "{}", entry.id);
        }
        assert!(cert.upper > 0, "{}: demand implies positive OPT", entry.id);
    }
}
