//! Cross-crate integration: every solver on common instance suites, with
//! the paper's inequality chain checked end-to-end:
//!
//! `dual ≤ OPT ≤ W(det) ≤ 2·OPT`, `W(growth) ≤ (2+ε)·OPT`,
//! `W(randomized) ≤ O(log n)·OPT`, and all outputs feasible.
//!
//! The assertions themselves live in `workloads::conformance` — the same
//! oracle layer the corpus tier (`tests/conformance.rs`) and
//! `bench_runner --conformance` run.

use steiner_forest::baselines::khan::{solve_khan, KhanConfig};
use steiner_forest::baselines::solve_collect_at_root;
use steiner_forest::core::det::{solve_growth, GrowthConfig};
use steiner_forest::graph::dyadic::Dyadic;
use steiner_forest::prelude::*;
use steiner_forest::steiner::{exact, moat, random_instance};
use steiner_forest::workloads::conformance::{
    assert_feasible_forest, assert_ledger_budget, assert_ratio_le, det_merge_pairs,
    moat_merge_pairs, randomized_log_factor,
};

fn suite() -> Vec<(WeightedGraph, Instance)> {
    let mut cases = Vec::new();
    for seed in 0..4u64 {
        let g = generators::gnp_connected(16, 0.25, 10, seed);
        let inst = random_instance(&g, 3, 2, seed + 50);
        cases.push((g, inst));
    }
    for seed in 0..2u64 {
        let g = generators::random_geometric(16, 0.4, seed);
        let inst = random_instance(&g, 2, 3, seed);
        cases.push((g, inst));
    }
    let g = generators::grid(3, 5, 6, 1);
    let inst = random_instance(&g, 2, 2, 9);
    cases.push((g, inst));
    cases
}

#[test]
fn inequality_chain_holds_everywhere() {
    for (i, (g, inst)) in suite().into_iter().enumerate() {
        let ctx = format!("case {i}");
        let opt = exact::solve(&g, &inst).weight as f64;
        let central = moat::grow(&g, &inst);
        let dual = central.dual.to_f64();
        assert!(dual <= opt + 1e-9, "{ctx}: dual {dual} > OPT {opt}");

        let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        let wd = det.forest.weight(&g);
        assert_feasible_forest(&g, &inst, &det.forest, &format!("{ctx}: det"));
        assert!(opt <= wd as f64 + 1e-9, "{ctx}: det below OPT");
        assert_ratio_le(wd, 2.0, opt, &format!("{ctx}: det ratio"));

        let growth = solve_growth(&g, &inst, &GrowthConfig::default()).unwrap();
        assert_feasible_forest(&g, &inst, &growth.forest, &format!("{ctx}: growth"));
        assert_ratio_le(
            growth.forest.weight(&g),
            2.5,
            opt,
            &format!("{ctx}: growth ratio"),
        );

        let rand = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
        assert_feasible_forest(&g, &inst, &rand.forest, &format!("{ctx}: rand"));
        assert_ratio_le(
            rand.forest.weight(&g),
            randomized_log_factor(g.n()),
            opt,
            &format!("{ctx}: rand ratio"),
        );
    }
}

#[test]
fn baselines_agree_on_feasibility_and_quality() {
    for (i, (g, inst)) in suite().into_iter().enumerate() {
        let ctx = format!("case {i}");
        let collect = solve_collect_at_root(&g, &inst).unwrap();
        assert_feasible_forest(&g, &inst, &collect.forest, &format!("{ctx}: collect"));
        // Collect-at-root runs Algorithm 1 centrally: identical output.
        let central = moat::grow(&g, &inst);
        assert_eq!(collect.forest, central.forest, "{ctx}");

        let khan = solve_khan(&g, &inst, &KhanConfig::default()).unwrap();
        assert_feasible_forest(&g, &inst, &khan.forest, &format!("{ctx}: khan"));
    }
}

#[test]
fn deterministic_equals_centralized_merge_for_merge() {
    for (i, (g, inst)) in suite().into_iter().enumerate() {
        let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        let central = moat::grow(&g, &inst);
        assert_eq!(
            det_merge_pairs(&det),
            moat_merge_pairs(&central),
            "case {i}: merge sequences differ"
        );
        assert_eq!(
            det.forest.weight(&g),
            central.forest.weight(&g),
            "case {i}: weights differ"
        );
    }
}

#[test]
fn growth_eps_sweep_shrinks_checkpoints() {
    let g = generators::path(30, 20);
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(29)])
        .build()
        .unwrap();
    let tight = solve_growth(
        &g,
        &inst,
        &GrowthConfig {
            eps: Dyadic::new(1, 3), // 1/8
            ..GrowthConfig::default()
        },
    )
    .unwrap();
    let loose = solve_growth(
        &g,
        &inst,
        &GrowthConfig {
            eps: Dyadic::from_int(2),
            ..GrowthConfig::default()
        },
    )
    .unwrap();
    assert!(
        loose.growth_phases < tight.growth_phases,
        "larger ε must mean fewer checkpoints: {} vs {}",
        loose.growth_phases,
        tight.growth_phases
    );
}

#[test]
fn ledgers_are_internally_consistent() {
    let g = generators::gnp_connected(20, 0.2, 8, 3);
    let inst = random_instance(&g, 3, 2, 3);
    let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
    assert_eq!(
        det.rounds.total(),
        det.rounds.simulated() + det.rounds.charged()
    );
    assert!(det.rounds.simulated() > 0, "core stages must be simulated");
    assert!(det.rounds.messages() > 0);
    // Every simulated stage respects the CONGEST bandwidth budget.
    let b = CongestConfig::for_graph(&g).bandwidth_bits;
    assert_ledger_budget(&det.rounds, b, "det ledger");
    // Phase structure appears in the ledger labels.
    let n_phases = det
        .rounds
        .entries()
        .iter()
        .filter(|e| e.label.contains("terminal decomposition"))
        .count();
    assert_eq!(n_phases, det.phases);
}
