//! Cross-crate integration: every solver on common instance suites, with
//! the paper's inequality chain checked end-to-end:
//!
//! `dual ≤ OPT ≤ W(det) ≤ 2·OPT`, `W(growth) ≤ (2+ε)·OPT`,
//! `W(randomized) ≤ O(log n)·OPT`, and all outputs feasible.

use steiner_forest::baselines::khan::{solve_khan, KhanConfig};
use steiner_forest::baselines::solve_collect_at_root;
use steiner_forest::core::det::{solve_growth, GrowthConfig};
use steiner_forest::graph::dyadic::Dyadic;
use steiner_forest::prelude::*;
use steiner_forest::steiner::{exact, moat, random_instance};

fn suite() -> Vec<(WeightedGraph, Instance)> {
    let mut cases = Vec::new();
    for seed in 0..4u64 {
        let g = generators::gnp_connected(16, 0.25, 10, seed);
        let inst = random_instance(&g, 3, 2, seed + 50);
        cases.push((g, inst));
    }
    for seed in 0..2u64 {
        let g = generators::random_geometric(16, 0.4, seed);
        let inst = random_instance(&g, 2, 3, seed);
        cases.push((g, inst));
    }
    let g = generators::grid(3, 5, 6, 1);
    let inst = random_instance(&g, 2, 2, 9);
    cases.push((g, inst));
    cases
}

#[test]
fn inequality_chain_holds_everywhere() {
    for (i, (g, inst)) in suite().into_iter().enumerate() {
        let opt = exact::solve(&g, &inst).weight as f64;
        let central = moat::grow(&g, &inst);
        let dual = central.dual.to_f64();
        assert!(dual <= opt + 1e-9, "case {i}: dual {dual} > OPT {opt}");

        let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        let wd = det.forest.weight(&g) as f64;
        assert!(
            inst.is_feasible(&g, &det.forest),
            "case {i}: det infeasible"
        );
        assert!(
            opt <= wd + 1e-9 && wd <= 2.0 * opt + 1e-9,
            "case {i}: det ratio"
        );

        let growth = solve_growth(&g, &inst, &GrowthConfig::default()).unwrap();
        let wg = growth.forest.weight(&g) as f64;
        assert!(
            inst.is_feasible(&g, &growth.forest),
            "case {i}: growth infeasible"
        );
        assert!(wg <= 2.5 * opt + 1e-9, "case {i}: growth ratio {wg}/{opt}");

        let rand = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
        let wr = rand.forest.weight(&g) as f64;
        assert!(
            inst.is_feasible(&g, &rand.forest),
            "case {i}: rand infeasible"
        );
        let log_bound = 3.0 * (g.n() as f64).ln();
        assert!(wr <= log_bound * opt, "case {i}: rand ratio {}", wr / opt);
    }
}

#[test]
fn baselines_agree_on_feasibility_and_quality() {
    for (i, (g, inst)) in suite().into_iter().enumerate() {
        let collect = solve_collect_at_root(&g, &inst).unwrap();
        assert!(inst.is_feasible(&g, &collect.forest), "case {i}");
        // Collect-at-root runs Algorithm 1 centrally: identical output.
        let central = moat::grow(&g, &inst);
        assert_eq!(collect.forest, central.forest, "case {i}");

        let khan = solve_khan(&g, &inst, &KhanConfig::default()).unwrap();
        assert!(inst.is_feasible(&g, &khan.forest), "case {i}");
    }
}

#[test]
fn deterministic_equals_centralized_merge_for_merge() {
    for (i, (g, inst)) in suite().into_iter().enumerate() {
        let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        let central = moat::grow(&g, &inst);
        let dp: Vec<_> = det.merges.iter().map(|m| (m.v, m.w)).collect();
        let cp: Vec<_> = central.merges.iter().map(|m| (m.v, m.w)).collect();
        assert_eq!(dp, cp, "case {i}: merge sequences differ");
        assert_eq!(
            det.forest.weight(&g),
            central.forest.weight(&g),
            "case {i}: weights differ"
        );
    }
}

#[test]
fn growth_eps_sweep_shrinks_checkpoints() {
    let g = generators::path(30, 20);
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(29)])
        .build()
        .unwrap();
    let tight = solve_growth(
        &g,
        &inst,
        &GrowthConfig {
            eps: Dyadic::new(1, 3), // 1/8
            ..GrowthConfig::default()
        },
    )
    .unwrap();
    let loose = solve_growth(
        &g,
        &inst,
        &GrowthConfig {
            eps: Dyadic::from_int(2),
            ..GrowthConfig::default()
        },
    )
    .unwrap();
    assert!(
        loose.growth_phases < tight.growth_phases,
        "larger ε must mean fewer checkpoints: {} vs {}",
        loose.growth_phases,
        tight.growth_phases
    );
}

#[test]
fn ledgers_are_internally_consistent() {
    let g = generators::gnp_connected(20, 0.2, 8, 3);
    let inst = random_instance(&g, 3, 2, 3);
    let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
    assert_eq!(
        det.rounds.total(),
        det.rounds.simulated() + det.rounds.charged()
    );
    assert!(det.rounds.simulated() > 0, "core stages must be simulated");
    assert!(det.rounds.messages() > 0);
    // Phase structure appears in the ledger labels.
    let n_phases = det
        .rounds
        .entries()
        .iter()
        .filter(|e| e.label.contains("terminal decomposition"))
        .count();
    assert_eq!(n_phases, det.phases);
}
