//! Medium-scale smoke tests: the full algorithms on the largest instances
//! the debug-build test suite can afford, checking invariants rather than
//! exact numbers.

use steiner_forest::baselines::khan::{solve_khan, KhanConfig};
use steiner_forest::core::det::{solve_growth, GrowthConfig};
use steiner_forest::prelude::*;
use steiner_forest::steiner::{moat, random_instance};

#[test]
fn deterministic_on_eighty_nodes() {
    let g = generators::gnp_connected(80, 0.06, 16, 17);
    let inst = random_instance(&g, 6, 3, 17);
    let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
    assert!(inst.is_feasible(&g, &out.forest));
    assert!(out.forest.is_forest(&g));
    assert!(out.phases <= 2 * inst.k());
    // Merge-for-merge equality with the centralized run still holds.
    let central = moat::grow(&g, &inst);
    let dp: Vec<_> = out.merges.iter().map(|m| (m.v, m.w)).collect();
    let cp: Vec<_> = central.merges.iter().map(|m| (m.v, m.w)).collect();
    assert_eq!(dp, cp);
}

#[test]
fn randomized_on_sixty_nodes_both_regimes() {
    let g = generators::gnp_connected(60, 0.08, 12, 23);
    let inst = random_instance(&g, 5, 2, 23);
    for force in [Some(false), Some(true)] {
        let out = solve_randomized(
            &g,
            &inst,
            &RandConfig {
                seed: 23,
                repetitions: 2,
                force_truncation: force,
                ..RandConfig::default()
            },
        )
        .unwrap();
        assert!(
            inst.is_feasible(&g, &out.forest),
            "truncation={force:?} infeasible"
        );
    }
}

#[test]
fn growth_on_long_caterpillar() {
    let g = generators::caterpillar(20, 2, 6, 31);
    let inst = random_instance(&g, 5, 3, 31);
    let out = solve_growth(&g, &inst, &GrowthConfig::default()).unwrap();
    assert!(inst.is_feasible(&g, &out.forest));
    // Lemma F.1: checkpoints are logarithmic in WD, far below merge count.
    assert!(
        out.growth_phases <= 64,
        "too many checkpoints: {}",
        out.growth_phases
    );
}

#[test]
fn khan_baseline_scales_and_stays_feasible() {
    let g = generators::gnp_connected(50, 0.1, 10, 37);
    let inst = random_instance(&g, 4, 2, 37);
    let out = solve_khan(
        &g,
        &inst,
        &KhanConfig {
            seed: 37,
            repetitions: 1,
        },
    )
    .unwrap();
    assert!(inst.is_feasible(&g, &out.forest));
}

#[test]
fn dense_graph_dense_terminals() {
    // Stress the candidate machinery: a complete graph where every node is
    // a terminal of one of two components.
    let g = generators::complete(24, 9, 5);
    let left: Vec<NodeId> = (0..12).map(NodeId).collect();
    let right: Vec<NodeId> = (12..24).map(NodeId).collect();
    let inst = InstanceBuilder::new(&g)
        .component(&left)
        .component(&right)
        .build()
        .unwrap();
    let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
    assert!(inst.is_feasible(&g, &out.forest));
    // A feasible forest on 24 terminals in 2 components needs ≥ 22 edges.
    assert!(out.forest.len() >= 22);
    assert!(out.forest.is_forest(&g));
}

#[test]
fn many_tiny_components() {
    // k large relative to n: phases bound (Lemma 4.4) and the O(ks + t)
    // ledger structure must survive.
    let g = generators::grid(6, 8, 5, 41);
    let inst = random_instance(&g, 12, 2, 41);
    let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
    assert!(inst.is_feasible(&g, &out.forest));
    assert!(out.phases <= 24);
}
