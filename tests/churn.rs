//! The churn-differential tier: seeded arrival/departure/reweight traces
//! replayed through `dsf-service`'s delta API.
//!
//! Every repaired forest is held to the conformance oracle's
//! `check_solution` seam on the *post-delta* instance — feasible, a
//! forest, and within the certified ratio envelope at `GREEDY_FACTOR` —
//! and the whole replay must be bit-identical across worker-thread
//! counts 1 and 4 (the programmatic override of `DSF_THREADS`). The
//! release-mode lab (`bench_runner --churn`) additionally races every
//! step against the from-scratch solve and gates wall-clock; this tier
//! keeps the correctness half of that gate in plain `cargo test`.

use std::sync::Arc;

use steiner_forest::congest::with_threads;
use steiner_forest::service::{DemandId, SolverSession};
use steiner_forest::steiner::ForestSolution;
use steiner_forest::workloads::certify;
use steiner_forest::workloads::churn::{churn_traces, instance_of, ChurnOp, ChurnTrace};
use steiner_forest::workloads::conformance::{self, GREEDY_FACTOR};
use steiner_forest::workloads::corpus::Tier;

/// Replays a whole trace through one incremental session, returning the
/// repaired forest, its weight, and the accepted move count per step.
fn replay(trace: &ChurnTrace) -> Vec<(ForestSolution, u64, u64)> {
    let mut session = SolverSession::new();
    assert!(
        session.install_graph(Arc::new(trace.graph.clone())),
        "{}: a fresh session must build its cache",
        trace.id
    );
    let mut handles: Vec<DemandId> = Vec::new();
    let mut out = Vec::with_capacity(trace.ops.len());
    for (i, op) in trace.ops.iter().enumerate() {
        let outcome = match op {
            ChurnOp::Add { terminals } => {
                let (id, o) = session
                    .add_demand(terminals)
                    .unwrap_or_else(|e| panic!("{}: step {i}: add failed: {e}", trace.id));
                handles.push(id);
                o
            }
            ChurnOp::Remove { slot } => {
                let id = handles.remove(*slot);
                session
                    .remove_demand(id)
                    .unwrap_or_else(|e| panic!("{}: step {i}: remove failed: {e}", trace.id))
            }
            ChurnOp::Reweight { edge, weight } => session
                .reweight_edge(*edge, *weight)
                .unwrap_or_else(|e| panic!("{}: step {i}: reweight failed: {e}", trace.id)),
        };
        out.push((outcome.forest, outcome.weight, outcome.moves));
    }
    out
}

#[test]
fn every_repaired_forest_conforms_on_the_post_delta_instance() {
    for trace in churn_traces(Tier::Quick) {
        let results = replay(&trace);
        let steps = trace.steps();
        assert_eq!(results.len(), steps.len(), "{}: replay length", trace.id);
        for (i, (step, (forest, weight, _))) in steps.iter().zip(&results).enumerate() {
            let inst = instance_of(&step.graph, &step.demands);
            let cert = certify(&step.graph, &inst);
            let violations = conformance::check_solution(
                &step.graph,
                &inst,
                &cert,
                "repair",
                forest,
                GREEDY_FACTOR,
                0.0,
            );
            assert!(
                violations.is_empty(),
                "{}: step {i} ({:?}): {violations:?}",
                trace.id,
                step.op
            );
            assert_eq!(
                *weight,
                forest.weight(&step.graph),
                "{}: step {i}: reported weight disagrees with the forest",
                trace.id
            );
        }
    }
}

#[test]
fn replay_is_bit_identical_across_thread_counts() {
    for trace in churn_traces(Tier::Quick) {
        let base = with_threads(1, || replay(&trace));
        let alt = with_threads(4, || replay(&trace));
        assert_eq!(base.len(), alt.len(), "{}: replay length drifted", trace.id);
        for (i, (a, b)) in base.iter().zip(&alt).enumerate() {
            assert!(
                a == b,
                "{}: step {i}: repair is not bit-identical across thread counts",
                trace.id
            );
        }
    }
}

#[test]
fn swapping_graphs_mid_session_rebuilds_rather_than_repairs() {
    let traces = churn_traces(Tier::Quick);
    let (a, b) = (&traces[0], &traces[1]);
    assert_ne!(
        a.graph.fingerprint(),
        b.graph.fingerprint(),
        "regression fixture needs two distinct graphs"
    );
    let mut session = SolverSession::new();
    assert!(session.install_graph(Arc::new(a.graph.clone())));
    let first_add = a
        .ops
        .iter()
        .find_map(|op| match op {
            ChurnOp::Add { terminals } => Some(terminals.clone()),
            _ => None,
        })
        .expect("every trace opens with arrivals");
    session.add_demand(&first_add).expect("add on graph A");
    assert!(!session.cached_forest().unwrap().edges().is_empty());
    // Swapping to a different topology must drop the cached solve: a
    // session that kept repairing forest-A edge ids against graph B
    // would be patching the wrong topology.
    assert!(
        session.install_graph(Arc::new(b.graph.clone())),
        "a fingerprint change must rebuild, not cache-hit"
    );
    assert!(
        session.cached_forest().unwrap().edges().is_empty(),
        "stale forest survived the graph swap"
    );
    let second_add = b
        .ops
        .iter()
        .find_map(|op| match op {
            ChurnOp::Add { terminals } => Some(terminals.clone()),
            _ => None,
        })
        .expect("every trace opens with arrivals");
    let (_, out) = session.add_demand(&second_add).expect("add on graph B");
    let inst = instance_of(&b.graph, &[second_add]);
    let violations = conformance::check_solution(
        &b.graph,
        &inst,
        &certify(&b.graph, &inst),
        "repair",
        &out.forest,
        GREEDY_FACTOR,
        0.0,
    );
    assert!(violations.is_empty(), "{violations:?}");
}
