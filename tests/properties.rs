//! Property-based tests (proptest) over randomly generated instances:
//! the invariants every component of the system must uphold regardless of
//! topology, weights, or component layout.

use proptest::prelude::*;

use steiner_forest::graph::dyadic::Dyadic;
use steiner_forest::prelude::*;
use steiner_forest::steiner::{exact, moat, random_instance};
use steiner_forest::workloads::conformance::{
    check_feasible_forest, det_merge_pairs, moat_merge_pairs, tie_slack,
};

/// Strategy: a connected random graph plus a feasible instance spec.
fn case() -> impl Strategy<Value = (u64, usize, f64, usize, usize)> {
    (
        0u64..1000,   // seed
        8usize..18,   // n
        0.15f64..0.5, // p
        1usize..4,    // k
        2usize..4,    // component size
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn moat_growing_invariants((seed, n, p, k, cs) in case()) {
        prop_assume!(k * cs <= n);
        let g = generators::gnp_connected(n, p, 12, seed);
        let inst = random_instance(&g, k, cs, seed);
        let run = moat::grow(&g, &inst);
        // Feasible forest (shared oracle check).
        prop_assert!(check_feasible_forest(&g, &inst, &run.forest).is_ok());
        // Primal-dual certificate: W(F) < 2·dual (Theorem 4.1 proof).
        let w = run.forest.weight(&g) as f64;
        prop_assert!(w <= 2.0 * run.dual.to_f64() + 1e-9);
        // Radii are non-negative and bounded by WD/2 (Lemma F.1 argument).
        for r in &run.radii {
            prop_assert!(!r.is_negative());
        }
    }

    #[test]
    fn distributed_matches_centralized((seed, n, p, k, cs) in case()) {
        prop_assume!(k * cs <= n);
        let g = generators::gnp_connected(n, p, 12, seed);
        let inst = random_instance(&g, k, cs, seed);
        let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        let central = moat::grow(&g, &inst);
        // Lemma 4.13: identical merge sequence. Exact weight equality holds
        // only under the paper's unique-path-weight assumption (Section 2);
        // with integer weights, equal-weight shortest paths may be realized
        // differently by the two implementations, so weights get a small
        // tie slack while the merge log must match exactly.
        prop_assert_eq!(det_merge_pairs(&out), moat_merge_pairs(&central));
        let (dw, cw) = (out.forest.weight(&g) as f64, central.forest.weight(&g) as f64);
        prop_assert!(
            (dw - cw).abs() <= tie_slack(cw),
            "weights diverge beyond tie slack: {} vs {}", dw, cw
        );
        prop_assert!(check_feasible_forest(&g, &inst, &out.forest).is_ok());
    }

    #[test]
    fn exact_is_a_true_lower_bound((seed, n, p, k, cs) in case()) {
        prop_assume!(k * cs <= n && k * cs <= 8);
        let g = generators::gnp_connected(n, p, 10, seed);
        let inst = random_instance(&g, k, cs, seed);
        let opt = exact::solve(&g, &inst);
        prop_assert!(check_feasible_forest(&g, &inst, &opt.forest).is_ok());
        let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        prop_assert!(opt.weight <= det.forest.weight(&g));
        let rand = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
        prop_assert!(opt.weight <= rand.forest.weight(&g));
    }

    #[test]
    fn pruning_is_minimal((seed, n, p, k, cs) in case()) {
        prop_assume!(k * cs <= n);
        let g = generators::gnp_connected(n, p, 12, seed);
        let inst = random_instance(&g, k, cs, seed);
        let run = moat::grow(&g, &inst);
        // Removing any single edge from the pruned forest breaks it.
        let edges = run.forest.edges().to_vec();
        for (i, _) in edges.iter().enumerate() {
            let mut rest = edges.clone();
            rest.remove(i);
            let smaller: ForestSolution = rest.into_iter().collect();
            prop_assert!(
                !inst.is_feasible(&g, &smaller),
                "edge {i} was removable: output not minimal"
            );
        }
    }

    #[test]
    fn dyadic_field_axioms(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000, e1 in 0u32..20, e2 in 0u32..20) {
        let x = Dyadic::new(a as i128, e1);
        let y = Dyadic::new(b as i128, e2);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!(x.half() + x.half(), x);
        prop_assert_eq!(x.half().double(), x);
        prop_assert_eq!(x - y, -(y - x));
        // Ordering is total and compatible with addition.
        if x < y {
            prop_assert!(x + Dyadic::ONE.half() <= y + Dyadic::ONE.half());
        }
    }

    #[test]
    fn embedding_dominates_metric(seed in 0u64..200, n in 8usize..16) {
        let g = generators::gnp_connected(n, 0.3, 10, seed);
        let emb = steiner_forest::embed::Embedding::build(
            &g,
            &steiner_forest::embed::EmbeddingConfig::new(seed),
        );
        let ap = steiner_forest::graph::dijkstra::all_pairs(&g);
        for u in 0..n {
            for v in (u + 1)..n {
                prop_assert!(
                    emb.tree_distance(NodeId::from(u), NodeId::from(v)) >= ap[u][v]
                );
            }
        }
    }
}
