//! End-to-end pipeline tests: raw connection requests through the Lemma
//! 2.3/2.4 transformations into each solver, as a deployment would run it.

use steiner_forest::congest::CongestConfig;
use steiner_forest::core::transforms;
use steiner_forest::prelude::*;
use steiner_forest::workloads::conformance::assert_feasible_forest;

#[test]
fn requests_to_solution_deterministic() {
    let g = generators::gnp_connected(24, 0.2, 12, 8);
    let mut cr = ConnectionRequests::new(g.n());
    cr.request(NodeId(0), NodeId(9));
    cr.request(NodeId(9), NodeId(17));
    cr.request(NodeId(3), NodeId(21));
    let congest = CongestConfig::for_graph(&g);

    let (inst, l1) = transforms::cr_to_ic(&g, &cr, &congest).unwrap();
    assert_eq!(
        inst,
        cr.to_components(&g),
        "distributed transform must match reference"
    );

    let (minimal, l2) = transforms::minimalize(&g, &inst, &congest).unwrap();
    assert!(minimal.is_minimal());

    let out = solve_deterministic(&g, &minimal, &DetConfig::default()).unwrap();
    assert_feasible_forest(&g, &minimal, &out.forest, "deterministic pipeline");
    // The original requests are satisfied too.
    let comps = g.components_of(out.forest.edges());
    assert_eq!(comps[0], comps[9]);
    assert_eq!(comps[9], comps[17]);
    assert_eq!(comps[3], comps[21]);

    let total = l1.total() + l2.total() + out.rounds.total();
    assert!(total > 0);
}

#[test]
fn requests_to_solution_randomized() {
    let g = generators::random_geometric(30, 0.3, 2);
    let mut cr = ConnectionRequests::new(g.n());
    cr.request(NodeId(1), NodeId(25));
    cr.request(NodeId(8), NodeId(14));
    let congest = CongestConfig::for_graph(&g);
    let (inst, _) = transforms::cr_to_ic(&g, &cr, &congest).unwrap();
    let out = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
    assert_feasible_forest(&g, &inst, &out.forest, "randomized pipeline");
    let comps = g.components_of(out.forest.edges());
    assert_eq!(comps[1], comps[25]);
    assert_eq!(comps[8], comps[14]);
}

#[test]
fn symmetric_and_transitive_requests_collapse() {
    // Requests forming a chain and a duplicate must yield one component.
    let g = generators::path(12, 2);
    let mut cr = ConnectionRequests::new(g.n());
    cr.request(NodeId(0), NodeId(4));
    cr.request(NodeId(4), NodeId(0));
    cr.request(NodeId(4), NodeId(8));
    cr.request(NodeId(8), NodeId(11));
    let congest = CongestConfig::for_graph(&g);
    let (inst, _) = transforms::cr_to_ic(&g, &cr, &congest).unwrap();
    assert_eq!(inst.k(), 1);
    let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
    // The solution must span 0..11 along the path: weight = 11 edges * 2.
    assert_eq!(out.forest.weight(&g), 22);
}

#[test]
fn truncated_randomized_on_high_s_graph() {
    // A long weighted path has s = n-1 >> sqrt(n): the truncated code path
    // (second stage over the F-reduced instance) must engage and stay
    // feasible.
    let g = generators::path(36, 3);
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(2), NodeId(33)])
        .component(&[NodeId(10), NodeId(20)])
        .build()
        .unwrap();
    let out = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
    assert!(out.truncated, "s > sqrt(n) must trigger truncation");
    assert_feasible_forest(&g, &inst, &out.forest, "truncated randomized");
}
