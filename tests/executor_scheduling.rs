//! Cross-crate guarantees of the event-driven executors: real protocols
//! from the workspace produce bit-identical results under every execution
//! engine (reference, single-threaded active-set, sharded at any thread
//! count), sparse wave workloads see the promised scheduling-work
//! reduction, dense workloads see wall-clock speedup from sharding, and
//! whole solver runs — round ledger included — are invariant under the
//! configured thread count.

use std::time::Instant;

use dsf_bench::perf::gossip_nodes;
use dsf_congest::{
    run, run_reference, run_sharded, set_default_threads, CongestConfig, Message, NodeCtx, Outbox,
    Protocol,
};
use dsf_core::det::{solve_deterministic, DetConfig};
use dsf_embed::distributed::LeProtocol;
use dsf_embed::random_ranks;
use dsf_graph::{generators, NodeId};
use dsf_steiner::random_instance;

/// A BFS wave: the sparse single-source primitive whose idle majority the
/// active-set scheduler skips.
#[derive(Debug, Clone, Copy)]
struct Wave;

impl Message for Wave {
    fn encoded_bits(&self) -> usize {
        8
    }
}

#[derive(Debug, PartialEq)]
struct WaveNode {
    joined: bool,
}

impl Protocol for WaveNode {
    type Msg = Wave;
    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Wave>) {
        if ctx.id == NodeId(0) {
            self.joined = true;
            out.send_all(ctx, Wave);
        }
    }
    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Wave)], out: &mut Outbox<Wave>) {
        if !self.joined && !inbox.is_empty() {
            self.joined = true;
            out.send_all(ctx, Wave);
        }
    }
    fn done(&self) -> bool {
        true // idle until woken by the wave
    }
}

/// The acceptance criterion of the executor rewrite: on a long-path BFS
/// workload, `Protocol::round` invocations drop by at least 5x versus the
/// retained naive reference (in fact by ~n/2), with identical metrics and
/// states.
#[test]
fn wave_on_path_cuts_activations_at_least_5x() {
    let n = 3_000;
    let g = generators::path(n, 1);
    let cfg = CongestConfig::for_graph(&g);
    let mk = || {
        (0..n)
            .map(|_| WaveNode { joined: false })
            .collect::<Vec<_>>()
    };
    let ev = run(&g, mk(), &cfg).unwrap();
    let rf = run_reference(&g, mk(), &cfg).unwrap();
    assert_eq!(ev.metrics, rf.metrics);
    assert_eq!(ev.states, rf.states);
    assert!(ev.states.iter().all(|s| s.joined));
    assert!(
        ev.stats.activations * 5 <= rf.stats.activations,
        "event {} vs reference {} activations",
        ev.stats.activations,
        rf.stats.activations
    );
}

/// The tentpole's wall-clock acceptance criterion: on a dense 50k-node
/// workload (the same gossip protocol the `--scale` bench tier reports
/// on, imported from `dsf_bench::perf`), 4 worker shards beat the
/// single-threaded engine by ≥ 1.5×, with bit-identical metrics and
/// states. Skipped on machines with fewer than 4 cores, where no speedup
/// can exist. Because sibling tests share the machine's cores, the
/// timing section retries a few times and passes on the first attempt
/// that clears the bar — only consistent failure across all attempts
/// (with pauses for transient load to drain) fails the test.
#[test]
fn sharded_speedup_at_least_1_5x_on_dense_gossip_50k() {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores < 4 {
        eprintln!("skipping sharded speedup assertion: {cores} < 4 cores");
        return;
    }
    let side = 224; // n = 50_176 ≥ the 50k acceptance bar
    let g = generators::grid(side, side, 4, 3);
    let cfg = CongestConfig::for_graph(&g);
    let time = |threads: usize| {
        let t0 = Instant::now();
        let res = run_sharded(&g, gossip_nodes(&g, 12), &cfg, threads).unwrap();
        (t0.elapsed().as_nanos() as u64, res)
    };
    let mut ratios = Vec::new();
    for attempt in 0..3 {
        if attempt > 0 {
            // Give concurrently-running sibling tests a chance to drain.
            std::thread::sleep(std::time::Duration::from_millis(500));
        }
        let (single_ns, single) = time(1);
        let (sharded_ns, sharded) = time(4);
        assert_eq!(single.metrics, sharded.metrics);
        assert_eq!(single.states, sharded.states);
        if sharded_ns * 3 <= single_ns * 2 {
            return; // ≥ 1.5× observed
        }
        ratios.push(single_ns as f64 / sharded_ns as f64);
    }
    panic!("sharded speedup stayed below 1.5x across all attempts: {ratios:?}");
}

/// Restores the process-wide thread default even if the test panics.
struct ThreadGuard(usize);

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        set_default_threads(self.0);
    }
}

/// A whole solver run — forest, merge log, and the full round *ledger* —
/// must be bit-identical under any configured thread count: every stage
/// of `solve_deterministic` funnels through `dsf_congest::run`, which
/// dispatches to the sharded executor, and nothing downstream may notice.
/// (Safe to flip the global mid-suite precisely *because* the outcome is
/// thread-count-invariant.)
#[test]
fn solver_ledger_is_thread_count_invariant() {
    let guard = ThreadGuard(dsf_congest::default_threads());
    let g = generators::gnp_connected(48, 0.12, 9, 7);
    let inst = random_instance(&g, 3, 2, 11);
    let mut outputs = Vec::new();
    for threads in [1usize, 4] {
        set_default_threads(threads);
        outputs.push((
            threads,
            solve_deterministic(&g, &inst, &DetConfig::default()).unwrap(),
        ));
    }
    drop(guard);
    let (_, base) = &outputs[0];
    for (threads, out) in &outputs[1..] {
        assert_eq!(out.forest, base.forest, "threads {threads}: forest differs");
        assert_eq!(
            out.rounds, base.rounds,
            "threads {threads}: round ledger differs"
        );
        assert_eq!(
            out.rounds.entries(),
            base.rounds.entries(),
            "threads {threads}: ledger entries differ"
        );
        assert_eq!(out.phases, base.phases, "threads {threads}: phase count");
    }
}

/// A production protocol (the LE-list construction dominating the
/// randomized algorithm's embedding stage) through both engines: the
/// event-driven executor must be observationally invisible.
#[test]
fn le_list_protocol_is_executor_invariant() {
    for seed in 0..4 {
        let g = generators::gnp_connected(40, 0.12, 12, seed);
        let ranks = random_ranks(40, seed + 9);
        let cfg = CongestConfig::for_graph(&g);
        let mk = || {
            g.nodes()
                .map(|v| LeProtocol::new(ranks[v.idx()], g.degree(v)))
                .collect::<Vec<_>>()
        };
        let ev = run(&g, mk(), &cfg).unwrap();
        let rf = run_reference(&g, mk(), &cfg).unwrap();
        assert_eq!(ev.metrics, rf.metrics, "seed {seed}");
        for v in g.nodes() {
            assert_eq!(
                ev.states[v.idx()].list().entries(),
                rf.states[v.idx()].list().entries(),
                "seed {seed}, node {v}"
            );
        }
        assert!(ev.stats.activations <= rf.stats.activations, "seed {seed}");
    }
}
