//! Cross-crate guarantees of the event-driven executor: real protocols
//! from the workspace produce bit-identical results under both execution
//! engines, and sparse wave workloads see the promised scheduling-work
//! reduction.

use dsf_congest::{run, run_reference, CongestConfig, Message, NodeCtx, Outbox, Protocol};
use dsf_embed::distributed::LeProtocol;
use dsf_embed::random_ranks;
use dsf_graph::{generators, NodeId};

/// A BFS wave: the sparse single-source primitive whose idle majority the
/// active-set scheduler skips.
#[derive(Debug, Clone, Copy)]
struct Wave;

impl Message for Wave {
    fn encoded_bits(&self) -> usize {
        8
    }
}

#[derive(Debug, PartialEq)]
struct WaveNode {
    joined: bool,
}

impl Protocol for WaveNode {
    type Msg = Wave;
    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Wave>) {
        if ctx.id == NodeId(0) {
            self.joined = true;
            out.send_all(ctx, Wave);
        }
    }
    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Wave)], out: &mut Outbox<Wave>) {
        if !self.joined && !inbox.is_empty() {
            self.joined = true;
            out.send_all(ctx, Wave);
        }
    }
    fn done(&self) -> bool {
        true // idle until woken by the wave
    }
}

/// The acceptance criterion of the executor rewrite: on a long-path BFS
/// workload, `Protocol::round` invocations drop by at least 5x versus the
/// retained naive reference (in fact by ~n/2), with identical metrics and
/// states.
#[test]
fn wave_on_path_cuts_activations_at_least_5x() {
    let n = 3_000;
    let g = generators::path(n, 1);
    let cfg = CongestConfig::for_graph(&g);
    let mk = || {
        (0..n)
            .map(|_| WaveNode { joined: false })
            .collect::<Vec<_>>()
    };
    let ev = run(&g, mk(), &cfg).unwrap();
    let rf = run_reference(&g, mk(), &cfg).unwrap();
    assert_eq!(ev.metrics, rf.metrics);
    assert_eq!(ev.states, rf.states);
    assert!(ev.states.iter().all(|s| s.joined));
    assert!(
        ev.stats.activations * 5 <= rf.stats.activations,
        "event {} vs reference {} activations",
        ev.stats.activations,
        rf.stats.activations
    );
}

/// A production protocol (the LE-list construction dominating the
/// randomized algorithm's embedding stage) through both engines: the
/// event-driven executor must be observationally invisible.
#[test]
fn le_list_protocol_is_executor_invariant() {
    for seed in 0..4 {
        let g = generators::gnp_connected(40, 0.12, 12, seed);
        let ranks = random_ranks(40, seed + 9);
        let cfg = CongestConfig::for_graph(&g);
        let mk = || {
            g.nodes()
                .map(|v| LeProtocol::new(ranks[v.idx()], g.degree(v)))
                .collect::<Vec<_>>()
        };
        let ev = run(&g, mk(), &cfg).unwrap();
        let rf = run_reference(&g, mk(), &cfg).unwrap();
        assert_eq!(ev.metrics, rf.metrics, "seed {seed}");
        for v in g.nodes() {
            assert_eq!(
                ev.states[v.idx()].list().entries(),
                rf.states[v.idx()].list().entries(),
                "seed {seed}, node {v}"
            );
        }
        assert!(ev.stats.activations <= rf.stats.activations, "seed {seed}");
    }
}
