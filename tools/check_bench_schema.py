#!/usr/bin/env python3
"""Validate bench_runner JSON artifacts against their declared schemas.

Every `BENCH_*.json` the CI jobs emit declares a `schema` identifier
(`dsf-bench-<tier>/vN`). This checker pins each tier to the schema
version the repo currently emits and verifies the report shape with a
real JSON parser — a second, independent reader next to the strict
line-oriented Rust ones, so a malformed artifact (or a schema bump that
forgot a consumer) fails the pipeline instead of uploading garbage.

For each file it checks:
  * the document parses as JSON and is an object;
  * `schema` matches the expected identifier for the tier (inferred from
    the file name, e.g. BENCH_executor.json -> dsf-bench-executor/v4;
    BENCH_scale.json is the executor schema too);
  * `mode` is a non-empty string and `entries` a non-empty list;
  * every entry carries the tier's required fields with the right types
    (optional fields — `speedup_milli`, `mem_peak_bytes` — are type
    checked when present);
  * conformance (v2) only: the per-solver `solvers` summary block has
    exactly the expected fields, its aggregates replay from the entries
    (mean/max ratio, max bound, entry and family counts), and the
    ratio-regression gate holds — every entry's achieved `ratio_milli`
    is within the `bound_milli` ceiling its solver was certified to;
  * churn (v1) only: the repair-quality gate replays offline — every
    entry's repaired `weight` is within its `scratch_weight` and its
    `ratio_milli` is within `bound_milli`.

Usage: python3 tools/check_bench_schema.py FILE.json [FILE.json ...]
       python3 tools/check_bench_schema.py --self-test
Exits 1 listing every violation, 0 when all files validate.

`--self-test` feeds the checker a known-good churn artifact plus
deliberately tampered copies (missing field, wrong type, repaired
weight above scratch, ratio past bound, unexpected field) and asserts
each tamper is rejected — proof the checker can fail, mirroring
tests/oracle_selftest.rs.
"""

import json
import sys
from pathlib import Path

# Tier -> (expected schema identifier, required entry fields, optional
# entry fields). Bump the version here in the same commit that bumps the
# Rust SCHEMA constant.
WALL = {"min": int, "mean": int, "max": int}
TIERS = {
    "executor": (
        "dsf-bench-executor/v4",
        {
            "name": str,
            "n": int,
            "m": int,
            "threads": int,
            "rounds": int,
            "messages": int,
            "activations": int,
            "wall_ns": WALL,
        },
        {
            "speedup_milli": int,
            "mem_peak_bytes": int,
            "steals": int,
            "utilization_milli": int,
        },
    ),
    "conformance": (
        "dsf-bench-conformance/v2",
        {
            "name": str,
            "n": int,
            "m": int,
            "k": int,
            "t": int,
            "weight": int,
            "cert_lower_milli": int,
            "cert_upper": int,
            "ratio_milli": int,
            "bound_milli": int,
        },
        {},
    ),
    "service": (
        "dsf-bench-service/v1",
        {
            "name": str,
            "jobs": int,
            "batch": int,
            "workers": int,
            "rounds": int,
            "messages": int,
            "arena_reuses": int,
            "arena_builds": int,
            "wall_ns": int,
            "solves_per_sec_milli": int,
        },
        {},
    ),
    "server": (
        "dsf-bench-server/v1",
        {
            "name": str,
            "jobs": int,
            "workers": int,
            "queue_capacity": int,
            "rate_milli_x": int,
            "rounds": int,
            "messages": int,
            "wall_ns": int,
            "offered_per_sec_milli": int,
            "p50_ns": int,
            "p99_ns": int,
            "solves_per_sec_milli": int,
        },
        {},
    ),
    "churn": (
        "dsf-bench-churn/v1",
        {
            "name": str,
            "step": int,
            "k": int,
            "moves": int,
            "weight": int,
            "scratch_weight": int,
            "ratio_milli": int,
            "bound_milli": int,
            "rounds": int,
            "messages": int,
            "repair_wall_ns": int,
            "scratch_wall_ns": int,
            "speedup_milli": int,
        },
        {},
    ),
}

# File stem -> tier. The scale artifacts reuse the executor schema.
STEMS = {
    "BENCH_executor": "executor",
    "BENCH_scale": "executor",
    "BENCH_conformance": "conformance",
    "BENCH_service": "service",
    "BENCH_server": "server",
    "BENCH_churn": "churn",
}


def is_int(v) -> bool:
    # bool is an int subclass in Python; a JSON true/false is never a
    # valid count.
    return isinstance(v, int) and not isinstance(v, bool)


def check_field(entry: dict, field: str, ty, errors, where: str):
    v = entry.get(field)
    if isinstance(ty, dict):  # nested object, e.g. wall_ns {min,mean,max}
        if not isinstance(v, dict):
            errors.append(f"{where}: field {field!r} must be an object")
            return
        for k in ty:
            if not is_int(v.get(k)):
                errors.append(f"{where}: field {field}.{k} must be an integer")
        for k in v:
            if k not in ty:
                errors.append(f"{where}: unexpected field {field}.{k}")
    elif ty is int:
        if not is_int(v):
            errors.append(f"{where}: field {field!r} must be an integer")
    elif not isinstance(v, ty) or (ty is str and not v):
        errors.append(f"{where}: field {field!r} must be a non-empty {ty.__name__}")


# Required fields of one conformance `solvers` summary object (v2).
SOLVER_SUMMARY_FIELDS = {
    "solver": str,
    "entries": int,
    "families": int,
    "mean_ratio_milli": int,
    "max_ratio_milli": int,
    "max_bound_milli": int,
}


def split_name(name: str):
    """conformance/<family>/<pattern>/seed=<s>/<solver> -> (family, solver)."""
    parts = name.split("/")
    return (parts[1] if len(parts) > 1 else ""), parts[-1]


def check_conformance_extras(path: Path, doc: dict, entries: list, errors):
    """v2 extras: solvers block shape + replay, and the ratio-regression gate."""
    # Ratio regression: achieved ratio within the certified ceiling.
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            continue
        ratio, bound = entry.get("ratio_milli"), entry.get("bound_milli")
        if is_int(ratio) and is_int(bound) and ratio > bound:
            errors.append(
                f"{path}: entries[{i}] ({entry.get('name')}): ratio regression — "
                f"ratio_milli {ratio} exceeds bound_milli {bound}"
            )

    solvers = doc.get("solvers")
    if not isinstance(solvers, list) or not solvers:
        errors.append(f"{path}: 'solvers' must be a non-empty list")
        return
    # Recompute the aggregates from the entries.
    by_solver = {}
    for entry in entries:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            continue
        family, solver = split_name(entry["name"])
        by_solver.setdefault(solver, {"ratios": [], "bounds": [], "families": set()})
        by_solver[solver]["ratios"].append(entry.get("ratio_milli", 0))
        by_solver[solver]["bounds"].append(entry.get("bound_milli", 0))
        by_solver[solver]["families"].add(family)
    for i, s in enumerate(solvers):
        where = f"{path}: solvers[{i}]"
        if not isinstance(s, dict):
            errors.append(f"{where}: must be an object")
            continue
        for field, ty in SOLVER_SUMMARY_FIELDS.items():
            if field not in s:
                errors.append(f"{where}: missing field {field!r}")
            else:
                check_field(s, field, ty, errors, where)
        for field in s:
            if field not in SOLVER_SUMMARY_FIELDS:
                errors.append(f"{where}: unexpected field {field!r}")
        name = s.get("solver")
        got = by_solver.get(name)
        if got is None:
            errors.append(f"{where}: solver {name!r} has no entries")
            continue
        expect = {
            "entries": len(got["ratios"]),
            "families": len(got["families"]),
            "mean_ratio_milli": sum(got["ratios"]) // len(got["ratios"]),
            "max_ratio_milli": max(got["ratios"]),
            "max_bound_milli": max(got["bounds"]),
        }
        for field, want in expect.items():
            if is_int(s.get(field)) and s[field] != want:
                errors.append(
                    f"{where}: {field} is {s[field]} but the entries replay to {want}"
                )
    missing = sorted(set(by_solver) - {s.get("solver") for s in solvers if isinstance(s, dict)})
    if missing:
        errors.append(f"{path}: solvers block is missing {missing}")


def check_churn_extras(path: Path, entries: list, errors):
    """v1 extras: replay the repair-quality gate offline.

    The bench harness aborts the run on a violation, so a shipped
    artifact that trips either check was tampered with (or a harness
    regression let a bad forest through).
    """
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            continue
        where = f"{path}: entries[{i}] ({entry.get('name')})"
        w, scratch = entry.get("weight"), entry.get("scratch_weight")
        if is_int(w) and is_int(scratch) and w > scratch:
            errors.append(
                f"{where}: repair regression — repaired weight {w} exceeds "
                f"the from-scratch weight {scratch}"
            )
        ratio, bound = entry.get("ratio_milli"), entry.get("bound_milli")
        if is_int(ratio) and is_int(bound) and ratio > bound:
            errors.append(
                f"{where}: ratio regression — ratio_milli {ratio} exceeds "
                f"bound_milli {bound}"
            )


def tier_for(path: Path):
    for stem, tier in STEMS.items():
        if path.name.startswith(stem):
            return tier
    return None


def check_file(path: Path, errors):
    tier = tier_for(path)
    if tier is None:
        errors.append(
            f"{path}: unknown artifact name (expected one of "
            f"{', '.join(sorted(STEMS))})"
        )
        return
    expected_schema, required, optional = TIERS[tier]
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    if not isinstance(doc, dict):
        errors.append(f"{path}: top level must be a JSON object")
        return
    if doc.get("schema") != expected_schema:
        errors.append(
            f"{path}: schema {doc.get('schema')!r}, expected {expected_schema!r}"
        )
    mode = doc.get("mode")
    if not isinstance(mode, str) or not mode:
        errors.append(f"{path}: 'mode' must be a non-empty string")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        errors.append(f"{path}: 'entries' must be a non-empty list")
        return
    known = set(required) | set(optional)
    for i, entry in enumerate(entries):
        where = f"{path}: entries[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: must be an object")
            continue
        for field, ty in required.items():
            if field not in entry:
                errors.append(f"{where}: missing field {field!r}")
            else:
                check_field(entry, field, ty, errors, where)
        for field, ty in optional.items():
            if field in entry:
                check_field(entry, field, ty, errors, where)
        for field in entry:
            if field not in known:
                errors.append(f"{where}: unexpected field {field!r}")
    if tier == "conformance":
        check_conformance_extras(path, doc, entries, errors)
    if tier == "churn":
        check_churn_extras(path, entries, errors)


def good_churn_entry():
    return {
        "name": "churn/gnp/seed=0/step=05/add",
        "step": 5,
        "k": 4,
        "moves": 2,
        "weight": 41,
        "scratch_weight": 41,
        "ratio_milli": 1000,
        "bound_milli": 4000,
        "rounds": 310,
        "messages": 6200,
        "repair_wall_ns": 1,
        "scratch_wall_ns": 9,
        "speedup_milli": 9000,
    }


def self_test():
    """Negative-test the churn tier: every tamper must be rejected."""
    import tempfile

    def run(mutate):
        doc = {
            "schema": "dsf-bench-churn/v1",
            "mode": "quick",
            "entries": [good_churn_entry()],
        }
        mutate(doc)
        errors = []
        with tempfile.TemporaryDirectory() as d:
            p = Path(d) / "BENCH_churn.json"
            p.write_text(json.dumps(doc), encoding="utf-8")
            check_file(p, errors)
        return errors

    def tampered(label, mutate, needle):
        errors = run(mutate)
        assert any(needle in e for e in errors), (
            f"self-test: {label}: expected a violation mentioning {needle!r}, "
            f"got {errors}"
        )

    assert run(lambda doc: None) == [], "self-test: the clean artifact must pass"
    tampered(
        "missing field",
        lambda doc: doc["entries"][0].pop("scratch_weight"),
        "missing field 'scratch_weight'",
    )
    tampered(
        "wrong type",
        lambda doc: doc["entries"][0].update(weight="41"),
        "field 'weight' must be an integer",
    )
    tampered(
        "repair above scratch",
        lambda doc: doc["entries"][0].update(weight=42, scratch_weight=41),
        "repair regression",
    )
    tampered(
        "ratio past bound",
        lambda doc: doc["entries"][0].update(ratio_milli=4001),
        "ratio regression",
    )
    tampered(
        "unexpected field",
        lambda doc: doc["entries"][0].update(wall_ns=7),
        "unexpected field 'wall_ns'",
    )
    tampered(
        "wrong schema id",
        lambda doc: doc.update(schema="dsf-bench-churn/v0"),
        "expected 'dsf-bench-churn/v1'",
    )
    tampered(
        "empty entries",
        lambda doc: doc.update(entries=[]),
        "non-empty list",
    )
    print("check_bench_schema: self-test passed (7 tampers rejected)")
    return 0


def main(argv):
    if argv == ["--self-test"]:
        return self_test()
    if not argv:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: check_bench_schema.py FILE.json [FILE.json ...]", file=sys.stderr)
        return 2
    errors = []
    for a in argv:
        check_file(Path(a), errors)
    if errors:
        print("bench schema violations:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"check_bench_schema: {len(argv)} artifact(s) validate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
