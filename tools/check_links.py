#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans the repository's markdown files (root *.md and docs/**/*.md) for
inline links `[text](target)` and checks that every *relative* target
resolves to an existing file or directory. External links (anything with a
scheme) and pure in-page anchors (`#...`) are skipped; a `path#anchor`
target is checked for the existence of `path` only.

Usage: python3 tools/check_links.py [FILE.md ...]
With no arguments, the default file set is scanned. Exits 1 listing every
broken link, 0 when all resolve.
"""

import glob
import re
import sys
from pathlib import Path

# Plain targets cannot contain whitespace or parentheses; angle-bracket
# quoting (`[x](<a b.md>)`) covers targets that do.
LINK = re.compile(r"\[[^\]]*\]\(<([^>]+)>\)|\[[^\]]*\]\(([^()\s]+)\)")
REPO = Path(__file__).resolve().parent.parent


def targets(md: Path):
    text = md.read_text(encoding="utf-8")
    # Strip fenced code blocks and inline code spans: their bracketed
    # text is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    text = re.sub(r"`[^`]*`", "", text)
    return [quoted or plain for quoted, plain in LINK.findall(text)]


def is_external(target: str) -> bool:
    return "://" in target or target.startswith(("mailto:", "#"))


def display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def main(argv):
    files = [Path(a).resolve() for a in argv] or sorted(
        Path(p) for pat in ("*.md", "docs/**/*.md") for p in glob.glob(str(REPO / pat), recursive=True)
    )
    broken = []
    for md in files:
        if not md.exists():
            broken.append(f"{md}: file itself does not exist")
            continue
        for target in targets(md):
            if is_external(target):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                broken.append(f"{display(md)}: broken link -> {target}")
    if broken:
        print("broken intra-repo links:", file=sys.stderr)
        for b in broken:
            print(f"  {b}", file=sys.stderr)
        return 1
    print(f"check_links: {len(files)} files, all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
